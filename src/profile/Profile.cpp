//===- profile/Profile.cpp - Execution profiles (PGO) ----------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "profile/Profile.h"
#include "support/FileSystem.h"
#include "support/JSON.h"
#include "support/raw_ostream.h"

#include <cstdio>

using namespace ompgpu;

void ExecutionProfile::merge(const ExecutionProfile &Other) {
  for (const auto &KV : Other.Dispatches)
    Dispatches[KV.first] += KV.second;
  for (const auto &KV : Other.Barriers)
    Barriers[KV.first] += KV.second;
  for (const auto &KV : Other.GuardEntries)
    GuardEntries[KV.first] += KV.second;
  for (const auto &KV : Other.Touches)
    Touches[KV.first] += KV.second;
  for (const auto &KV : Other.Kernels) {
    KernelProfile &K = Kernels[KV.first];
    K.Launches += KV.second.Launches;
    if (KV.second.SharedStackHighWater > K.SharedStackHighWater)
      K.SharedStackHighWater = KV.second.SharedStackHighWater;
  }
}

static uint64_t lookup(const std::map<std::string, uint64_t> &M,
                       const std::string &Key) {
  auto It = M.find(Key);
  return It == M.end() ? 0 : It->second;
}

uint64_t ExecutionProfile::dispatches(const std::string &Anchor) const {
  return lookup(Dispatches, Anchor);
}
uint64_t ExecutionProfile::barriers(const std::string &Anchor) const {
  return lookup(Barriers, Anchor);
}
uint64_t ExecutionProfile::guardEntries(const std::string &Anchor) const {
  return lookup(GuardEntries, Anchor);
}
uint64_t ExecutionProfile::touches(const std::string &Anchor) const {
  return lookup(Touches, Anchor);
}

uint64_t
ExecutionProfile::sumByPrefix(const std::map<std::string, uint64_t> &Counts,
                              const std::string &Prefix) {
  uint64_t Sum = 0;
  for (auto It = Counts.lower_bound(Prefix); It != Counts.end(); ++It) {
    if (It->first.compare(0, Prefix.size(), Prefix) != 0)
      break;
    Sum += It->second;
  }
  return Sum;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

static json::Value countersToJSON(const std::map<std::string, uint64_t> &M) {
  json::Value O = json::Value::makeObject();
  for (const auto &KV : M)
    O.set(KV.first, KV.second);
  return O;
}

json::Value ompgpu::profileToJSON(const ExecutionProfile &P) {
  json::Value Kernels = json::Value::makeObject();
  for (const auto &KV : P.Kernels) {
    json::Value K = json::Value::makeObject();
    K.set("launches", KV.second.Launches)
        .set("shared_stack_high_water", KV.second.SharedStackHighWater);
    Kernels.set(KV.first, std::move(K));
  }

  json::Value Doc = json::Value::makeObject();
  Doc.set("schema_version", ProfileSchemaVersion)
      .set("generator", "ompgpu-gpusim")
      .set("dispatches", countersToJSON(P.Dispatches))
      .set("barriers", countersToJSON(P.Barriers))
      .set("guard_entries", countersToJSON(P.GuardEntries))
      .set("touches", countersToJSON(P.Touches))
      .set("kernels", std::move(Kernels));
  return Doc;
}

/// Reads one non-negative integer counter, rejecting the JSON shapes a
/// hostile or truncated profile could carry.
static Error readCount(const json::Value &V, const std::string &Where,
                       uint64_t &Out) {
  if (V.kind() != json::Value::Kind::Integer)
    return Error::failure("profile: " + Where + " is not an integer");
  if (V.asInt() < 0)
    return Error::failure("profile: " + Where + " is negative");
  Out = (uint64_t)V.asInt();
  return Error::success();
}

static Error readCounters(const json::Value &Doc, const char *Section,
                          std::map<std::string, uint64_t> &Out) {
  const json::Value *S = Doc.find(Section);
  if (!S)
    return Error::failure("profile: missing section '" +
                          std::string(Section) + "'");
  if (!S->isObject())
    return Error::failure("profile: section '" + std::string(Section) +
                          "' is not an object");
  for (const json::Value::Member &M : S->members()) {
    uint64_t Count = 0;
    if (Error E = readCount(M.second,
                            std::string(Section) + "." + M.first, Count))
      return E;
    // Duplicate keys in the input collapse by summing, matching merge().
    Out[M.first] += Count;
  }
  return Error::success();
}

Expected<ExecutionProfile> ompgpu::profileFromJSON(const json::Value &Doc) {
  if (!Doc.isObject())
    return Error::failure("profile: document is not an object");
  const json::Value *Version = Doc.find("schema_version");
  if (!Version || Version->kind() != json::Value::Kind::Integer)
    return Error::failure("profile: missing integer schema_version");
  if (Version->asInt() != (int64_t)ProfileSchemaVersion)
    return Error::failure("profile: unsupported schema_version " +
                          std::to_string(Version->asInt()) + " (expected " +
                          std::to_string(ProfileSchemaVersion) + ")");

  ExecutionProfile P;
  if (Error E = readCounters(Doc, "dispatches", P.Dispatches))
    return E;
  if (Error E = readCounters(Doc, "barriers", P.Barriers))
    return E;
  if (Error E = readCounters(Doc, "guard_entries", P.GuardEntries))
    return E;
  if (Error E = readCounters(Doc, "touches", P.Touches))
    return E;

  const json::Value *Kernels = Doc.find("kernels");
  if (!Kernels)
    return Error::failure("profile: missing section 'kernels'");
  if (!Kernels->isObject())
    return Error::failure("profile: section 'kernels' is not an object");
  for (const json::Value::Member &M : Kernels->members()) {
    if (!M.second.isObject())
      return Error::failure("profile: kernels." + M.first +
                            " is not an object");
    KernelProfile K;
    uint64_t Launches = 0, HighWater = 0;
    if (Error E = readCount(M.second.at("launches"),
                            "kernels." + M.first + ".launches", Launches))
      return E;
    if (Error E = readCount(M.second.at("shared_stack_high_water"),
                            "kernels." + M.first + ".shared_stack_high_water",
                            HighWater))
      return E;
    K.Launches = Launches;
    K.SharedStackHighWater = HighWater;
    P.Kernels[M.first] = K;
  }
  return P;
}

Expected<ExecutionProfile> ompgpu::parseProfile(const std::string &Text) {
  json::Value Doc;
  std::string ParseError;
  if (!json::parse(Text, Doc, &ParseError))
    return Error::failure("profile: malformed JSON: " + ParseError);
  return profileFromJSON(Doc);
}

std::string ompgpu::serializeProfile(const ExecutionProfile &P) {
  return profileToJSON(P).str() + "\n";
}

//===----------------------------------------------------------------------===//
// File I/O
//===----------------------------------------------------------------------===//

Error ompgpu::writeProfileFile(const std::string &Path,
                               const ExecutionProfile &P) {
  // Atomic write (support/FileSystem): a killed nightly PGO job cannot
  // leave a truncated profile for the next A/B run to choke on.
  return writeTextFile(Path, serializeProfile(P));
}

Expected<ExecutionProfile> ompgpu::readProfileFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Error::failure("cannot open profile '" + Path + "'");
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  bool ReadFailed = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadFailed)
    return Error::failure("error reading profile '" + Path + "'");
  return parseProfile(Text);
}
