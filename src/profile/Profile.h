//===- profile/Profile.h - Execution profiles (PGO) -------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The profile-guided-optimization subsystem's data model (docs/pgo.md):
/// deterministic execution counters collected by gpusim's profiling mode,
/// keyed to stable IR anchors attached at codegen time, serialized as a
/// schema-versioned JSON document with merge and round-trip support, and
/// consumed by the core passes (CustomStateMachine cascade ordering,
/// HeapToShared ranking, SPMDzation guard grouping).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_PROFILE_PROFILE_H
#define OMPGPU_PROFILE_PROFILE_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>

namespace ompgpu {

namespace json {
class Value;
}

/// Version of the execution-profile JSON schema. Bump on any field
/// rename/removal; additions are backwards compatible.
inline constexpr unsigned ProfileSchemaVersion = 1;

/// Per-kernel launch statistics.
struct KernelProfile {
  uint64_t Launches = 0;
  /// Maximum shared data-sharing stack depth (bytes) over all launches.
  uint64_t SharedStackHighWater = 0;
};

/// One execution profile: counters keyed by the stable IR anchors of
/// docs/pgo.md ("parallel:<wrapper>", "barrier:<function>:<n>",
/// "guard:<kernel>:<n>", "alloc:<function>:<var>"). std::map keys keep
/// every serialization deterministic.
struct ExecutionProfile {
  /// parallel:* -> number of __kmpc_parallel_51 dispatches of that region.
  std::map<std::string, uint64_t> Dispatches;
  /// barrier:* and guard:*:pre/post -> dynamic executions of that barrier
  /// (counted once per block arrival, not per thread).
  std::map<std::string, uint64_t> Barriers;
  /// guard:* -> times the main thread entered that guarded region.
  std::map<std::string, uint64_t> GuardEntries;
  /// alloc:* -> loads/stores/atomics landing in that allocation's memory.
  std::map<std::string, uint64_t> Touches;
  /// kernel name -> launch statistics.
  std::map<std::string, KernelProfile> Kernels;

  bool empty() const {
    return Dispatches.empty() && Barriers.empty() && GuardEntries.empty() &&
           Touches.empty() && Kernels.empty();
  }

  /// Adds \p Other's counters into this profile (sums counts, maxes
  /// high-water marks). Commutative and associative, so shards of a run
  /// can merge in any order.
  void merge(const ExecutionProfile &Other);

  /// Convenience lookups returning 0 for unknown anchors.
  uint64_t dispatches(const std::string &Anchor) const;
  uint64_t barriers(const std::string &Anchor) const;
  uint64_t guardEntries(const std::string &Anchor) const;
  uint64_t touches(const std::string &Anchor) const;

  /// Sums a counter map over every anchor that starts with \p Prefix.
  /// SPMDzation uses this to aggregate a kernel's guard activity.
  static uint64_t sumByPrefix(const std::map<std::string, uint64_t> &Counts,
                              const std::string &Prefix);
};

/// The profiling sink gpusim feeds when LaunchConfig::Profile is set. One
/// collector can accumulate over multiple launches; the underlying profile
/// is plain counter arithmetic, so repeated identical runs produce
/// byte-identical serializations.
class ProfileCollector {
  ExecutionProfile P;

public:
  void noteDispatch(const std::string &Anchor) { ++P.Dispatches[Anchor]; }
  void noteBarrier(const std::string &Anchor) { ++P.Barriers[Anchor]; }
  void noteGuardEntry(const std::string &Anchor) { ++P.GuardEntries[Anchor]; }
  void noteTouch(const std::string &Anchor) { ++P.Touches[Anchor]; }
  void noteKernel(const std::string &Kernel, uint64_t SharedStackPeak) {
    KernelProfile &K = P.Kernels[Kernel];
    ++K.Launches;
    if (SharedStackPeak > K.SharedStackHighWater)
      K.SharedStackHighWater = SharedStackPeak;
  }

  const ExecutionProfile &profile() const { return P; }
  ExecutionProfile takeProfile() { return std::move(P); }
};

/// \name Serialization (schema v1, docs/pgo.md)
/// @{
/// Builds the deterministic JSON document for \p P.
json::Value profileToJSON(const ExecutionProfile &P);
/// Parses \p Doc, validating the schema version and counter types.
Expected<ExecutionProfile> profileFromJSON(const json::Value &Doc);
/// Parses profile JSON text (strict parse + schema validation).
Expected<ExecutionProfile> parseProfile(const std::string &Text);
/// Serializes \p P to pretty-printed JSON text with a trailing newline.
std::string serializeProfile(const ExecutionProfile &P);
/// @}

/// \name File I/O
/// @{
Error writeProfileFile(const std::string &Path, const ExecutionProfile &P);
Expected<ExecutionProfile> readProfileFile(const std::string &Path);
/// @}

} // namespace ompgpu

#endif // OMPGPU_PROFILE_PROFILE_H
