//===- core/SPMDzation.cpp - Generic to SPMD mode conversion ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SPMDzation (Sec. IV-B3): converts a generic-mode kernel into SPMD mode.
/// All sequentially executed code is analyzed inter-procedurally; side
/// effects are guarded by the main thread, values escaping a guarded
/// region are broadcast through shared memory, and side effects are
/// grouped at the basic-block level prior to guard generation to minimize
/// barriers (Fig. 7).
///
//===----------------------------------------------------------------------===//

#include "core/Passes.h"
#include "ir/IRBuilder.h"
#include "profile/Profile.h"
#include "support/STLExtras.h"

using namespace ompgpu;

namespace {

/// True if \p Ptr provably refers to thread-private (stack) memory.
bool isThreadPrivatePointer(const Value *Ptr) {
  while (true) {
    if (isa<AllocaInst>(Ptr))
      return true;
    if (const auto *GEP = dyn_cast<GEPInst>(Ptr)) {
      Ptr = GEP->getPointerOperand();
      continue;
    }
    if (const auto *C = dyn_cast<CastInst>(Ptr)) {
      Ptr = C->getSrc();
      continue;
    }
    return false;
  }
}

/// Whether \p I can be hoisted above a pending group of guarded side
/// effects (Fig. 7's reordering): side-effect free, not touching memory,
/// and independent of the group's results.
bool isMovableAcrossGuards(const Instruction *I,
                           const std::vector<Instruction *> &Group) {
  if (I->isTerminator() || isa<PhiInst>(I) || isa<AllocaInst>(I))
    return false;
  if (I->mayReadOrWriteMemory() || I->mayHaveSideEffects())
    return false;
  for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op) {
    auto *OpInst = dyn_cast<Instruction>(I->getOperand(Op));
    if (OpInst && is_contained(Group, const_cast<Instruction *>(OpInst)))
      return false;
  }
  return true;
}

/// How SPMDzation treats one instruction in the sequential region.
enum class SideEffectKind {
  None,       ///< Executable by all threads as-is.
  NeedsGuard, ///< Must execute on the main thread only.
  Blocking,   ///< Prevents SPMDzation altogether.
};

SideEffectKind classify(const Instruction *I, std::string &BlockReason) {
  if (const auto *SI = dyn_cast<StoreInst>(I))
    return isThreadPrivatePointer(SI->getPointerOperand())
               ? SideEffectKind::None
               : SideEffectKind::NeedsGuard;
  if (isa<AtomicRMWInst>(I))
    return SideEffectKind::NeedsGuard;
  const auto *CI = dyn_cast<CallInst>(I);
  if (!CI)
    return SideEffectKind::None;

  const Function *Callee = CI->getCalledFunction();
  if (!Callee) {
    BlockReason = "indirect call in sequential region";
    return SideEffectKind::Blocking;
  }
  if (OpenMPModuleInfo::isOpenMPRuntimeFunction(Callee)) {
    // The data placement optimization is expected to have removed the
    // globalization calls; remaining ones block the conversion.
    if (isRTFn(Callee, RTFn::AllocShared) ||
        isRTFn(Callee, RTFn::FreeShared) ||
        isRTFn(Callee, RTFn::CoalescedPushStack) ||
        isRTFn(Callee, RTFn::PopStack)) {
      BlockReason = "globalization runtime call '" + Callee->getName() +
                    "' in sequential region";
      return SideEffectKind::Blocking;
    }
    // Parallel-region management and queries adapt to the mode switch.
    return SideEffectKind::None;
  }

  // User-provided domain knowledge (Sec. IV-D).
  if (Callee->hasAssumption("ext_spmd_amenable"))
    return SideEffectKind::None;
  if (Callee->hasFnAttr(FnAttr::ReadNone) ||
      (Callee->hasFnAttr(FnAttr::ReadOnly) &&
       Callee->hasFnAttr(FnAttr::NoSync)))
    return SideEffectKind::None;
  if (Callee->hasFnAttr(FnAttr::NoSync) && !Callee->isDeclaration())
    return SideEffectKind::NeedsGuard; // whole call under the guard
  BlockReason = "call to '" + Callee->getName() +
                "' with potential side effects; add `#pragma omp assumes "
                "ext_spmd_amenable` if it is safe for all threads";
  return SideEffectKind::Blocking;
}

/// Emits the guard for one group of consecutive side effects and the
/// broadcasts for values used outside of it. \p GuardAnchor is the stable
/// "guard:<kernel>:<n>" profile anchor of this guard (docs/pgo.md): it is
/// attached to the guard branch, and derived ":pre"/":post" anchors to the
/// two barriers, so gpusim's profiling mode can attribute dynamic barrier
/// executions and guard entries to this region.
void emitGuard(OpenMPOptContext &Ctx, std::vector<Instruction *> &Group,
               const std::string &GuardAnchor) {
  Module &M = Ctx.M;
  IRContext &IRCtx = M.getContext();
  Instruction *First = Group.front();
  Instruction *Last = Group.back();
  BasicBlock *BB = First->getParent();

  BasicBlock *GuardBB = BB->splitBefore(First, "region.guarded");
  // Find the instruction following Last inside GuardBB.
  size_t LastIdx = GuardBB->indexOf(Last);
  Instruction *After = nullptr;
  {
    size_t Idx = 0;
    for (Instruction *I : *GuardBB) {
      if (Idx == LastIdx + 1) {
        After = I;
        break;
      }
      ++Idx;
    }
  }
  assert(After && "guarded group must not contain the terminator");
  BasicBlock *JoinBB = GuardBB->splitBefore(After, "region.barrier");

  // Replace BB's fallthrough branch with the main-thread guard. A barrier
  // precedes the guard so the main thread cannot overwrite state other
  // threads are still reading — this is the "up to two barriers per
  // guarded instruction" cost (Fig. 7b) that grouping amortizes.
  Instruction *Fallthrough = BB->getTerminator();
  assert(isa<BrInst>(Fallthrough) && !cast<BrInst>(Fallthrough)
                                          ->isConditional());
  Fallthrough->eraseFromParent();
  IRBuilder B(IRCtx);
  B.setInsertPoint(BB);
  Function *Barrier = getOrCreateRTFn(M, RTFn::BarrierSimpleSPMD);
  Function *HwTid = getOrCreateRTFn(M, RTFn::HardwareThreadId);
  B.createCall(Barrier, {})->setAnchor(GuardAnchor + ":pre");
  Value *Tid = B.createCall(HwTid, {}, "tid");
  Value *IsMain = B.createICmpEQ(Tid, IRCtx.getInt32(0), "is_main");
  B.createCondBr(IsMain, GuardBB, JoinBB)->setAnchor(GuardAnchor);

  // All threads synchronize after the guarded region.
  IRBuilder JB(IRCtx);
  JB.setInsertPoint(JoinBB->front());
  JB.createCall(Barrier, {})->setAnchor(GuardAnchor + ":post");

  // Broadcast values that escape the guarded region ([11]'s logic).
  for (Instruction *I : Group) {
    if (I->getType()->isVoidTy())
      continue;
    std::vector<User *> Outside;
    for (User *U : I->users())
      if (auto *UI = dyn_cast<Instruction>(U))
        if (UI->getParent() != GuardBB)
          Outside.push_back(U);
    if (Outside.empty())
      continue;
    GlobalVariable *G = M.createGlobal(I->getType(), AddrSpace::Shared,
                                       "broadcast");
    G->setLinkage(Linkage::Internal);
    IRBuilder GB(IRCtx);
    GB.setInsertPoint(GuardBB->getTerminator());
    Value *Cast = GB.createAddrSpaceCast(G, AddrSpace::Generic);
    GB.createStore(I, Cast);
    IRBuilder LB(IRCtx);
    // Load after the barrier (the barrier is JoinBB's first instruction).
    std::vector<Instruction *> JoinInsts = JoinBB->getInstructions();
    LB.setInsertPoint(JoinInsts[1]);
    Value *Cast2 = LB.createAddrSpaceCast(G, AddrSpace::Generic);
    Value *L = LB.createLoad(I->getType(), Cast2, "broadcast.val");
    for (User *U : Outside)
      U->replaceUsesOfWith(I, L);
  }

  ++Ctx.Stats.GuardedRegions;
}

/// Attempts SPMDzation of one kernel; returns true if converted.
bool trySPMDzeKernel(OpenMPOptContext &Ctx, const KernelTargetInfo &KI) {
  const OpenMPModuleInfo &Info = *Ctx.Info;
  Function *Kernel = KI.Kernel;
  const std::set<const BasicBlock *> &MainOnly =
      Info.mainOnlyBlocks(Kernel);
  if (MainOnly.empty())
    return false;

  // Pass 1: classify all sequential instructions. Blocks are visited in
  // function order, not in MainOnly's pointer order: the first blocking
  // instruction names itself in the OMP121 remark, and that choice must
  // not depend on heap layout (the compile service compares batched
  // results bit-identically against sequential ones).
  std::map<BasicBlock *, std::vector<Instruction *>> Guarded;
  for (BasicBlock *BB : Kernel->getBlocks()) {
    if (!MainOnly.count(BB))
      continue;
    for (Instruction *I : *BB) {
      std::string Reason;
      switch (classify(I, Reason)) {
      case SideEffectKind::None:
        break;
      case SideEffectKind::NeedsGuard:
        Guarded[BB].push_back(I);
        break;
      case SideEffectKind::Blocking:
        Ctx.Remarks.emit(RemarkId::OMP121, /*Missed=*/true,
                         Kernel->getName(),
                         "Generic-mode kernel could not be transformed to "
                         "SPMD-mode: " +
                             Reason);
        return false;
      }
    }
  }

  // PGO (docs/pgo.md): the grouping transformation only pays off when the
  // guards actually execute — its hoisting reorders SPMD-amenable code to
  // amortize the two barriers per guard over fewer, larger groups. With a
  // profile, keep grouping only for kernels whose guard barriers were
  // observed executing; a kernel whose guarded path was dynamically dead
  // keeps its original instruction order.
  bool DoGroup = !Ctx.Config.DisableGuardGrouping;
  if (DoGroup && Ctx.Config.Profile && !Guarded.empty()) {
    uint64_t DynBarriers = ExecutionProfile::sumByPrefix(
        Ctx.Config.Profile->Barriers, "guard:" + Kernel->getName() + ":");
    DoGroup = DynBarriers > 0;
    Ctx.Remarks.emit(RemarkId::OMP212, /*Missed=*/!DoGroup,
                     Kernel->getName(),
                     DoGroup
                         ? "Grouping guarded side effects: profile shows " +
                               std::to_string(DynBarriers) +
                               " dynamic guard barrier executions."
                         : "Not grouping guarded side effects: profile "
                           "shows no dynamic guard barrier executions.");
    ++Ctx.Stats.PGOGuardDecisions;
  }

  // Pass 2: group side effects per block (Fig. 7) by hoisting independent
  // SPMD-amenable instructions above the pending group. Blocks are
  // visited in function order for deterministic output.
  std::vector<std::vector<Instruction *>> Groups;
  for (BasicBlock *BB : Kernel->getBlocks()) {
    auto GuardedIt = Guarded.find(BB);
    if (GuardedIt == Guarded.end())
      continue;
    std::vector<Instruction *> &Insts = GuardedIt->second;
    std::vector<Instruction *> Cur;
    for (Instruction *I : BB->getInstructions()) {
      if (is_contained(Insts, I)) {
        Cur.push_back(I);
        continue;
      }
      if (Cur.empty())
        continue;
      if (DoGroup && isMovableAcrossGuards(I, Cur)) {
        I->moveBefore(Cur.front());
        continue;
      }
      Groups.push_back(Cur);
      Cur.clear();
    }
    if (!Cur.empty())
      Groups.push_back(Cur);
  }

  // Pass 3: emit the guards, numbering them in emission order so the
  // anchors are stable across identical compiles.
  unsigned GuardIdx = 0;
  for (std::vector<Instruction *> &Group : Groups)
    emitGuard(Ctx, Group,
              "guard:" + Kernel->getName() + ":" +
                  std::to_string(GuardIdx++));

  // Pass 4: flip the kernel to SPMD mode.
  IRContext &IRCtx = Ctx.M.getContext();
  KI.InitCall->setArgOperand(0, IRCtx.getInt32(OMP_TGT_EXEC_MODE_SPMD));
  KI.InitCall->setArgOperand(1, IRCtx.getInt1(false));
  for (CallInst *Deinit : KI.DeinitCalls)
    Deinit->setArgOperand(0, IRCtx.getInt32(OMP_TGT_EXEC_MODE_SPMD));
  Kernel->getKernelEnvironment().Mode = ExecMode::SPMD;
  Kernel->getKernelEnvironment().UseGenericStateMachine = false;

  Ctx.Remarks.emit(RemarkId::OMP120, /*Missed=*/false, Kernel->getName(),
                   "Transformed generic-mode kernel to SPMD-mode.");
  ++Ctx.Stats.SPMDzedKernels;
  return true;
}

} // namespace

bool ompgpu::runSPMDzation(OpenMPOptContext &Ctx) {
  if (Ctx.Config.DisableSPMDization)
    return false;
  bool Changed = false;
  // Copy: trySPMDzeKernel mutates the module (Info stays valid for the
  // kernels we have not touched yet because we only read per-kernel data).
  std::vector<KernelTargetInfo> Kernels = Ctx.Info->kernels();
  for (const KernelTargetInfo &KI : Kernels) {
    if (KI.Mode != ExecMode::Generic || !KI.UseGenericStateMachine ||
        !KI.UserCodeBB)
      continue;
    Changed |= trySPMDzeKernel(Ctx, KI);
  }
  if (Changed)
    Ctx.refresh();
  return Changed;
}
