//===- core/OpenMPOpt.cpp - OpenMP-aware optimization pass -----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/OpenMPOpt.h"
#include "core/Passes.h"
#include "support/PassInstrumentation.h"
#include "transforms/FunctionAttrs.h"

using namespace ompgpu;

bool ompgpu::runOpenMPOpt(Module &M, const OpenMPOptConfig &Config,
                          OpenMPOptStats &Stats, RemarkCollector &Remarks,
                          PassInstrumentation *PI) {
  OpenMPOptContext Ctx(M, Config, Stats, Remarks, PI);
  bool Changed = false;

  // Runs one sub-pass, nested under the instrumentation when present so
  // each phase gets its own timing/change/verify record.
  auto RunSub = [&](const char *Name, bool (*SubPass)(OpenMPOptContext &)) {
    if (PI && PI->enabled()) {
      bool Changed = PI->runPass(Name, [&] { return SubPass(Ctx); });
      // A rolled-back sub-pass replaced the module contents wholesale;
      // the analysis results in Ctx point into freed IR until recomputed.
      if (PI->lastPassRolledBack())
        Ctx.refresh();
      return Changed;
    }
    return SubPass(Ctx);
  };

  // Attribute inference feeds the side-effect reasoning of SPMDzation and
  // the dead-code queries of the cleanup pipeline.
  auto RunAttrs = [&] {
    if (PI && PI->enabled()) {
      bool Changed = PI->runPass(FunctionAttrsPassName,
                                 [&] { return inferFunctionAttrs(M); });
      if (PI->lastPassRolledBack())
        Ctx.refresh();
      return Changed;
    }
    return inferFunctionAttrs(M);
  };

  RunAttrs();
  Ctx.refresh();

  // The paper's order: internalize for full call-site visibility, undo
  // globalization (stack first, then static shared memory), convert
  // kernels to SPMD mode where possible, specialize the state machine of
  // the rest, and finally fold the now-determined runtime queries.
  if (!Config.DisableInternalization)
    Changed |= RunSub(passname::Internalize, runInternalization);

  if (!Config.DisableDeglobalization) {
    Changed |= RunSub(passname::HeapToStack, runHeapToStack);
    if (!Config.DisableHeapToShared)
      Changed |= RunSub(passname::HeapToShared, runHeapToShared);
  }

  Changed |= RunSub(passname::SPMDzation, runSPMDzation);
  Changed |= RunSub(passname::CustomStateMachine, runCustomStateMachineRewrite);

  if (!Config.DisableFolding)
    Changed |= RunSub(passname::FoldRuntimeCalls, runFoldRuntimeCalls);

  // Attributes may have become stronger (e.g. after deglobalization the
  // allocation calls are gone); refresh them for downstream passes.
  RunAttrs();
  return Changed;
}
