//===- core/OpenMPOpt.cpp - OpenMP-aware optimization pass -----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/OpenMPOpt.h"
#include "core/Passes.h"
#include "transforms/FunctionAttrs.h"

using namespace ompgpu;

bool ompgpu::runOpenMPOpt(Module &M, const OpenMPOptConfig &Config,
                          OpenMPOptStats &Stats, RemarkCollector &Remarks) {
  OpenMPOptContext Ctx(M, Config, Stats, Remarks);
  bool Changed = false;

  // Attribute inference feeds the side-effect reasoning of SPMDzation and
  // the dead-code queries of the cleanup pipeline.
  inferFunctionAttrs(M);
  Ctx.refresh();

  // The paper's order: internalize for full call-site visibility, undo
  // globalization (stack first, then static shared memory), convert
  // kernels to SPMD mode where possible, specialize the state machine of
  // the rest, and finally fold the now-determined runtime queries.
  if (!Config.DisableInternalization)
    Changed |= runInternalization(Ctx);

  if (!Config.DisableDeglobalization) {
    Changed |= runHeapToStack(Ctx);
    if (!Config.DisableHeapToShared)
      Changed |= runHeapToShared(Ctx);
  }

  Changed |= runSPMDzation(Ctx);
  Changed |= runCustomStateMachineRewrite(Ctx);

  if (!Config.DisableFolding)
    Changed |= runFoldRuntimeCalls(Ctx);

  // Attributes may have become stronger (e.g. after deglobalization the
  // allocation calls are gone); refresh them for downstream passes.
  inferFunctionAttrs(M);
  return Changed;
}
