//===- core/CustomStateMachine.cpp - State machine specialization ----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The custom state machine rewrite (Sec. IV-B2): a generic-mode kernel
/// that could not be SPMDzed stops using the runtime's generic worker loop
/// and instead embeds a specialized state machine in kernel IR. When all
/// parallel regions reaching the kernel are statically known, the work
/// function pointer is replaced by a unique identifier (the address of a
/// dedicated ID global), the if-cascade calls the regions directly, and no
/// function has its address taken anymore — removing both the indirect
/// call and the spurious-call-edge register pressure (PR46450).
///
//===----------------------------------------------------------------------===//

#include "core/Passes.h"
#include "ir/IRBuilder.h"
#include "profile/Profile.h"
#include "support/STLExtras.h"

#include <algorithm>

using namespace ompgpu;

namespace {

/// Parallel sites and wrappers reaching one kernel.
struct ReachingRegions {
  std::vector<CallInst *> Sites;
  std::vector<Function *> Wrappers;
  bool AllKnown = true;
};

ReachingRegions collectReachingRegions(OpenMPOptContext &Ctx,
                                       Function *Kernel) {
  ReachingRegions R;
  const OpenMPModuleInfo &Info = *Ctx.Info;
  for (CallInst *Site : Info.parallelSites()) {
    const std::set<Function *> &RK =
        Info.reachingKernels(Site->getFunction());
    if (!RK.count(Kernel))
      continue;
    R.Sites.push_back(Site);
    Value *WorkFn = Site->getArgOperand(0);
    if (auto *W = dyn_cast<Function>(WorkFn)) {
      if (!is_contained(R.Wrappers, W))
        R.Wrappers.push_back(W);
    } else {
      R.AllKnown = false;
    }
  }
  // A reachable declaration (outside the runtime) may hide parallel
  // regions from other translation units.
  for (const Function *F :
       Ctx.Info->getCallGraph().reachableFrom(Kernel)) {
    if (F->isDeclaration() && !OpenMPModuleInfo::isOpenMPRuntimeFunction(F))
      R.AllKnown = false;
  }
  return R;
}

} // namespace

bool ompgpu::runCustomStateMachineRewrite(OpenMPOptContext &Ctx) {
  if (Ctx.Config.DisableStateMachineRewrite)
    return false;
  Module &M = Ctx.M;
  IRContext &IRCtx = M.getContext();
  bool Changed = false;

  std::map<Function *, GlobalVariable *> RegionIds;

  for (const KernelTargetInfo &KI : Ctx.Info->kernels()) {
    if (KI.Mode != ExecMode::Generic || !KI.UseGenericStateMachine ||
        !KI.InitBranch)
      continue;
    Function *Kernel = KI.Kernel;

    ReachingRegions Regions = collectReachingRegions(Ctx, Kernel);
    if (Regions.Sites.empty()) {
      // No parallelism: nothing for workers to do; drop the generic state
      // machine entirely.
      KI.InitCall->setArgOperand(1, IRCtx.getInt1(false));
      Kernel->getKernelEnvironment().UseGenericStateMachine = false;
      Ctx.Remarks.emit(RemarkId::OMP130, /*Missed=*/false,
                       Kernel->getName(),
                       "Removing unused state machine from generic-mode "
                       "kernel.");
      ++Ctx.Stats.CustomStateMachines;
      Changed = true;
      continue;
    }

    // PGO (docs/pgo.md): order the if-cascade by dispatch hotness so the
    // hottest region is matched with the fewest compares. The dispatch
    // counts are keyed by the "parallel:<wrapper>" anchors that -profile-
    // gen attached to the __kmpc_parallel_51 callsites. The sort is
    // stable, so unprofiled wrappers keep their deterministic discovery
    // order.
    if (Ctx.Config.Profile && !Regions.Wrappers.empty()) {
      const ExecutionProfile &Prof = *Ctx.Config.Profile;
      auto Heat = [&Prof](const Function *W) {
        return Prof.dispatches("parallel:" + W->getName());
      };
      std::stable_sort(Regions.Wrappers.begin(), Regions.Wrappers.end(),
                       [&Heat](const Function *A, const Function *B) {
                         return Heat(A) > Heat(B);
                       });
      std::string Order;
      for (Function *W : Regions.Wrappers) {
        if (!Order.empty())
          Order += ", ";
        Order += W->getName() + " (" + std::to_string(Heat(W)) + ")";
      }
      Ctx.Remarks.emit(RemarkId::OMP210, /*Missed=*/false,
                       Kernel->getName(),
                       "Ordering state machine if-cascade by profiled "
                       "dispatch counts: " + Order + ".");
      ++Ctx.Stats.PGOReorderedCascades;
    }

    // The function-pointer elimination requires that every kernel a site
    // reaches is rewritten with knowledge of the identifier; for
    // simplicity (and matching the single-kernel translation units of the
    // benchmarks) require this kernel to be the only reacher.
    bool IdsUsable = Regions.AllKnown;
    for (CallInst *Site : Regions.Sites) {
      const std::set<Function *> &RK =
          Ctx.Info->reachingKernels(Site->getFunction());
      if (RK.size() != 1)
        IdsUsable = false;
    }

    if (!Regions.AllKnown)
      Ctx.Remarks.emit(
          RemarkId::OMP132, /*Missed=*/true, Kernel->getName(),
          "Generic-mode kernel is executed with a customized state "
          "machine that requires a fallback: a parallel region may come "
          "from an unknown translation unit.");

    // Build the specialized state machine in kernel IR.
    KI.InitCall->setArgOperand(1, IRCtx.getInt1(false));
    Kernel->getKernelEnvironment().UseGenericStateMachine = false;

    BasicBlock *ExitBB = KI.InitBranch->getSuccessor(1);
    BasicBlock *SMBegin = Kernel->createBlock("worker_state_machine.begin");
    KI.InitBranch->setSuccessor(1, SMBegin);

    IRBuilder B(IRCtx);
    B.setInsertPoint(SMBegin);
    Value *WorkFnAddr = B.createAlloca(IRCtx.getPtrTy(), "worker.work_fn");

    // Identifier globals and their casts (emitted up front, in the begin
    // block, so the cascade compares registers).
    std::vector<Value *> IdCasts;
    if (IdsUsable) {
      for (Function *W : Regions.Wrappers) {
        GlobalVariable *&Id = RegionIds[W];
        if (!Id) {
          Id = M.createGlobal(IRCtx.getInt8Ty(), AddrSpace::Global,
                              W->getName() + ".ID");
          Id->setLinkage(Linkage::Internal);
        }
        IdCasts.push_back(
            B.createAddrSpaceCast(Id, AddrSpace::Generic,
                                  W->getName() + ".id"));
      }
      // Replace the communicated function pointer by the identifier.
      for (CallInst *Site : Regions.Sites) {
        auto *W = cast<Function>(Site->getArgOperand(0));
        Site->setArgOperand(0, RegionIds[W]);
      }
    } else {
      for (Function *W : Regions.Wrappers)
        IdCasts.push_back(W);
    }

    BasicBlock *Await = Kernel->createBlock("worker_state_machine.await");
    BasicBlock *ActiveCheck =
        Kernel->createBlock("worker_state_machine.is_active");
    BasicBlock *Done = Kernel->createBlock("worker_state_machine.done");
    B.createBr(Await);

    Function *Barrier = getOrCreateRTFn(M, RTFn::BarrierSimpleSPMD);
    Function *KernelPar = getOrCreateRTFn(M, RTFn::KernelParallel);
    Function *GetArgs = getOrCreateRTFn(M, RTFn::KernelGetArgs);
    Function *EndPar = getOrCreateRTFn(M, RTFn::KernelEndParallel);

    B.setInsertPoint(Await);
    B.createCall(Barrier, {});
    Value *IsActive = B.createCall(KernelPar, {WorkFnAddr}, "is_active");
    Value *WorkFn = B.createLoad(IRCtx.getPtrTy(), WorkFnAddr, "work_fn");
    Value *NoWork = B.createICmpEQ(
        WorkFn, IRCtx.getNullPtr(AddrSpace::Generic), "no_more_work");
    B.createCondBr(NoWork, ExitBB, ActiveCheck);

    B.setInsertPoint(ActiveCheck);
    BasicBlock *Check = Kernel->createBlock("worker_state_machine.check");
    B.createCondBr(IsActive, Check, Done);

    B.setInsertPoint(Check);
    for (unsigned I = 0, E = Regions.Wrappers.size(); I != E; ++I) {
      Function *W = Regions.Wrappers[I];
      Value *IsThis =
          B.createICmpEQ(WorkFn, IdCasts[I], "is." + W->getName());
      BasicBlock *Exec =
          Kernel->createBlock("worker_state_machine.exec");
      BasicBlock *Next =
          Kernel->createBlock("worker_state_machine.check");
      B.createCondBr(IsThis, Exec, Next);
      B.setInsertPoint(Exec);
      Value *Args = B.createCall(GetArgs, {}, "work_args");
      B.createCall(W, {Args});
      B.createBr(Done);
      B.setInsertPoint(Next);
    }
    if (!Regions.AllKnown) {
      Value *Args = B.createCall(GetArgs, {}, "work_args");
      B.createIndirectCall(getParallelWrapperType(IRCtx), WorkFn, {Args});
      B.createBr(Done);
      ++Ctx.Stats.CustomStateMachinesWithFallback;
    } else {
      // All parallel regions are known; anything else is a logic error.
      B.createUnreachable();
    }

    B.setInsertPoint(Done);
    B.createCall(EndPar, {});
    B.createCall(Barrier, {});
    B.createBr(Await);

    Ctx.Remarks.emit(RemarkId::OMP130, /*Missed=*/false, Kernel->getName(),
                     "Rewriting generic-mode kernel with a customized "
                     "state machine.");
    ++Ctx.Stats.CustomStateMachines;
    Changed = true;
  }

  if (Changed)
    Ctx.refresh();
  return Changed;
}
