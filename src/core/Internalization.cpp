//===- core/Internalization.cpp - Aggressive internalization ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "To avoid precision loss of our analysis in the presence of externally
/// visible functions we performed aggressive internalization. In essence,
/// we duplicate functions with external linkage to create an internal only
/// copy, used when invoked from a kernel within the translation unit, and
/// an external only copy, which is used otherwise." (Sec. IV)
///
//===----------------------------------------------------------------------===//

#include "core/Passes.h"
#include "transforms/Cloning.h"

using namespace ompgpu;

bool ompgpu::runInternalization(OpenMPOptContext &Ctx) {
  Module &M = Ctx.M;

  // Phase 1: select candidates and create the internal copies.
  std::map<Function *, Function *> Clones;
  for (Function *F : M.functions()) {
    if (F->isDeclaration() || F->isKernel())
      continue;
    if (OpenMPModuleInfo::isOpenMPRuntimeFunction(F))
      continue;
    // Some linkage kinds cannot be duplicated safely (the linker may merge
    // or replace the definition).
    if (F->getLinkage() == Linkage::LinkOnceODR) {
      Ctx.Remarks.emit(RemarkId::OMP133, /*Missed=*/true, F->getName(),
                       "could not internalize function '" + F->getName() +
                           "' due to its linkage; inter-procedural "
                           "analysis will be conservative");
      continue;
    }
    if (!F->hasExternalLinkage())
      continue;
    Clones[F] = cloneFunction(*F, F->getName() + ".internalized");
    ++Ctx.Stats.InternalizedFunctions;
  }
  if (Clones.empty())
    return false;

  // Phase 2: redirect every direct call (including calls inside the new
  // clones) to the internal copies. The external originals remain for
  // unknown outside callers; address-taken uses keep the original.
  for (auto &[F, Clone] : Clones) {
    for (User *U : std::vector<User *>(F->users().begin(),
                                       F->users().end())) {
      auto *CI = dyn_cast<CallInst>(U);
      if (!CI || !CI->getParent())
        continue;
      if (CI->getCalledOperand() == F)
        CI->setCalledOperand(Clone);
    }
  }

  Ctx.refresh();
  return true;
}
