//===- core/Passes.h - Internal sub-pass interfaces -------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal header shared by the OpenMPOpt sub-passes. Each sub-pass
/// receives the shared context with a fresh OpenMPModuleInfo.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_CORE_PASSES_H
#define OMPGPU_CORE_PASSES_H

#include "core/OpenMPModuleInfo.h"
#include "core/OpenMPOpt.h"

#include <memory>

namespace ompgpu {

class PassInstrumentation;

/// Stable sub-pass names used by the pass instrumentation and timing
/// reports; one per runOpenMPOpt phase, in pipeline order.
namespace passname {
inline constexpr const char Internalize[] = "internalize";
inline constexpr const char HeapToStack[] = "heap-to-stack";
inline constexpr const char HeapToShared[] = "heap-to-shared";
inline constexpr const char SPMDzation[] = "spmdization";
inline constexpr const char CustomStateMachine[] = "custom-state-machine";
inline constexpr const char FoldRuntimeCalls[] = "fold-runtime-calls";
} // namespace passname

/// Shared state threaded through the sub-passes of one runOpenMPOpt call.
struct OpenMPOptContext {
  Module &M;
  const OpenMPOptConfig &Config;
  OpenMPOptStats &Stats;
  RemarkCollector &Remarks;
  std::unique_ptr<OpenMPModuleInfo> Info;
  /// Optional instrumentation the sub-passes run under (may be null).
  PassInstrumentation *PI = nullptr;

  OpenMPOptContext(Module &M, const OpenMPOptConfig &Config,
                   OpenMPOptStats &Stats, RemarkCollector &Remarks,
                   PassInstrumentation *PI = nullptr)
      : M(M), Config(Config), Stats(Stats), Remarks(Remarks), PI(PI) {}

  /// Recomputes the OpenMP module analysis after IR changes.
  void refresh() { Info = std::make_unique<OpenMPModuleInfo>(M); }
};

/// Duplicates externally visible device functions into internal clones so
/// the analyses see every call site (Sec. IV).
bool runInternalization(OpenMPOptContext &Ctx);

/// Rewrites __kmpc_alloc_shared calls into allocas when the pointer does
/// not escape to other threads and the free is always reached (Sec. IV-A).
bool runHeapToStack(OpenMPOptContext &Ctx);

/// Replaces remaining main-thread-only __kmpc_alloc_shared calls with
/// statically allocated shared memory (Sec. IV-A).
bool runHeapToShared(OpenMPOptContext &Ctx);

/// Converts generic-mode kernels to SPMD mode, guarding and grouping
/// sequential side effects (Sec. IV-B3, Fig. 7).
bool runSPMDzation(OpenMPOptContext &Ctx);

/// Replaces the runtime's generic state machine with a specialized one in
/// kernel IR that avoids function pointers (Sec. IV-B2).
bool runCustomStateMachineRewrite(OpenMPOptContext &Ctx);

/// Folds execution-mode, parallel-level, and launch-parameter runtime
/// calls to constants (Sec. IV-C).
bool runFoldRuntimeCalls(OpenMPOptContext &Ctx);

} // namespace ompgpu

#endif // OMPGPU_CORE_PASSES_H
