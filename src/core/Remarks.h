//===- core/Remarks.h - Optimization remarks (Sec. IV-D) --------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optimization remarks with the upstream OMP1xx identifiers. "All
/// optimizations described in this work come with optimization remarks
/// that inform and guide the user" (Sec. IV-D); docs/remarks.md documents
/// each identifier with actionable advice, mirroring
/// https://openmp.llvm.org/remarks/OptimizationRemarks.html.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_CORE_REMARKS_H
#define OMPGPU_CORE_REMARKS_H

#include <string>
#include <vector>

namespace ompgpu {

class raw_ostream;

/// Remark identifiers, matching the upstream numbering.
enum class RemarkId : unsigned {
  OMP110 = 110, ///< Moving globalized variable to the stack.
  OMP111 = 111, ///< Replaced globalized variable with shared memory.
  OMP112 = 112, ///< Found thread data sharing on the GPU (missed).
  OMP113 = 113, ///< Could not move globalized variable to the stack.
  OMP120 = 120, ///< Transformed generic-mode kernel to SPMD-mode.
  OMP121 = 121, ///< Side effects prevent SPMD-mode execution (missed).
  OMP130 = 130, ///< Rewriting kernel with a customized state machine.
  OMP131 = 131, ///< Customized state machine requires a fallback (missed).
  OMP132 = 132, ///< Unknown parallel region prevents the rewrite (missed).
  OMP133 = 133, ///< Internalization failed for a function (missed).
  OMP150 = 150, ///< Parallel region used in unexpected ways.
  OMP160 = 160, ///< Removed parallel region that is never executed.
  OMP170 = 170, ///< OpenMP runtime call folded to a constant.
  OMP180 = 180, ///< Pass rolled back and quarantined (recovery mode).
  OMP181 = 181, ///< Opt-bisect localized the first bad pass execution.
  OMP190 = 190, ///< Differential fuzzing found an oracle mismatch (missed).
  OMP191 = 191, ///< Fuzz reducer shrank a failing module.
  OMP200 = 200, ///< Lint: barrier reachable under divergent control flow.
  OMP201 = 201, ///< Lint: data race on shared memory.
  OMP202 = 202, ///< Lint: globalization alloc/free pairing violation.
  OMP203 = 203, ///< Lint: use-after-free / double-free of a shared alloc.
  OMP204 = 204, ///< Lint: SPMD main-thread guard protocol violation.
  OMP210 = 210, ///< PGO: state-machine cascade reordered by dispatch counts.
  OMP211 = 211, ///< PGO: shared-memory budget ranked by touch frequency.
  OMP212 = 212, ///< PGO: guard grouping driven by dynamic barrier counts.
  OMP220 = 220, ///< Resilience: watchdog converted a hung simulation into a
                ///< recoverable timeout.
  OMP221 = 221, ///< Resilience: request degraded down the preset ladder.
  OMP222 = 222, ///< Resilience: compile-cache disk tier bypassed after an
                ///< I/O error (auto re-enables).
  OMP223 = 223, ///< Resilience: poison request quarantined after exhausting
                ///< its attempt budget.
  OMP230 = 230, ///< Autotune: best configuration selected for a
                ///< workload x architecture (docs/architectures.md).
  OMP231 = 231, ///< Autotune: tuned configuration beats the default preset
                ///< (budget moved or preset switched).
  OMP240 = 240, ///< Mapping: inferred a minimal map clause for a kernel
                ///< parameter (docs/data-mapping.md).
  OMP241 = 241, ///< Mapping: conservative tofrom fallback, the access
                ///< pattern escaped the summary walk (missed).
  OMP242 = 242, ///< Lint: stale-host read — kernel reads host data its
                ///< mapping never copies to the device.
  OMP243 = 243, ///< Lint: stale-device read — kernel writes are never
                ///< copied back for the host to observe.
  OMP244 = 244, ///< Lint: redundant round-trip — a declared mapping copies
                ///< in a direction the kernel provably never needs.
  OMP250 = 250, ///< Multi-device: work partitioned across a device group
                ///< (row chunks per device; docs/multi-device.md).
  OMP251 = 251, ///< Multi-device: cross-device reduction strategy selected
                ///< (deterministic fixed-order cell combine).
  OMP252 = 252, ///< Multi-device: load-imbalance warning — the slowest
                ///< device dominates the group makespan (missed).
};

/// Returns the upstream identifier string of \p Id, e.g. "OMP110"
/// (docs/remarks.md and the compile-report use these).
inline std::string remarkName(RemarkId Id) {
  return "OMP" + std::to_string((unsigned)Id);
}

/// One emitted remark.
struct Remark {
  RemarkId Id;
  bool Missed; ///< missed-optimization remark vs. performed-transformation
  std::string FunctionName;
  std::string Message;
};

/// Collects remarks during one pass run.
class RemarkCollector {
  std::vector<Remark> Remarks;

public:
  void emit(RemarkId Id, bool Missed, std::string FunctionName,
            std::string Message) {
    Remarks.push_back(
        {Id, Missed, std::move(FunctionName), std::move(Message)});
  }

  const std::vector<Remark> &remarks() const { return Remarks; }
  size_t size() const { return Remarks.size(); }
  void clear() { Remarks.clear(); }

  /// Prints remarks in the clang -Rpass style used by the paper's Fig. 8.
  void print(raw_ostream &OS) const;
};

} // namespace ompgpu

#endif // OMPGPU_CORE_REMARKS_H
