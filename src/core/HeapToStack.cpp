//===- core/HeapToStack.cpp - Globalization to stack memory ----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic inter-procedural heap-to-stack transformation (Sec. IV-A):
/// determine whether memory returned by the globalization allocator can be
/// replaced with an alloca. Two checks are performed: all uses of the
/// pointer are followed inter-procedurally to prove it is not exposed to
/// another thread, and the deallocation must always be reached (checked
/// via post-dominance).
///
//===----------------------------------------------------------------------===//

#include "core/Passes.h"
#include "analysis/Dominators.h"
#include "analysis/PointerEscape.h"
#include "ir/IRBuilder.h"

using namespace ompgpu;

namespace ompgpu {

/// Classification of pointer arguments shared with HeapToShared: the
/// deallocation does not capture; passing into a parallel region or an
/// unknown callee shares the pointer with other threads; defined device
/// functions are inspected recursively.
ArgCaptureKind classifyOpenMPCallArg(const CallInst &CI, unsigned ArgIdx) {
  const Function *Callee = CI.getCalledFunction();
  if (!Callee)
    return ArgCaptureKind::Captures;
  if (isRTFn(Callee, RTFn::FreeShared) || isRTFn(Callee, RTFn::PopStack))
    return ArgCaptureKind::NoCapture;
  if (OpenMPModuleInfo::isOpenMPRuntimeFunction(Callee))
    return ArgCaptureKind::Captures; // __kmpc_parallel_51 and friends
  if (Callee->isDeclaration())
    return ArgCaptureKind::Captures;
  (void)ArgIdx;
  return ArgCaptureKind::InspectCallee;
}

/// Collects every __kmpc_alloc_shared call outside the runtime itself.
std::vector<CallInst *> collectGlobalizationAllocs(Module &M) {
  std::vector<CallInst *> Allocs;
  for (Function *F : M.functions()) {
    if (OpenMPModuleInfo::isOpenMPRuntimeFunction(F))
      continue;
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (auto *CI = dyn_cast<CallInst>(I))
          if (isRTFn(CI->getCalledFunction(), RTFn::AllocShared))
            Allocs.push_back(CI);
  }
  return Allocs;
}

/// Finds the __kmpc_free_shared calls paired with \p Alloc (direct SSA
/// uses in the same function).
std::vector<CallInst *> findMatchingFrees(CallInst *Alloc) {
  std::vector<CallInst *> Frees;
  for (User *U : Alloc->users()) {
    auto *CI = dyn_cast<CallInst>(U);
    if (!CI)
      continue;
    if (isRTFn(CI->getCalledFunction(), RTFn::FreeShared) &&
        CI->getArgOperand(0) == Alloc &&
        CI->getFunction() == Alloc->getFunction())
      Frees.push_back(CI);
  }
  return Frees;
}

/// Infers a scalar element type for a globalized variable so that Mem2Reg
/// can later promote it; falls back to an i8 array of the right size.
Type *inferAllocatedType(CallInst *Alloc, uint64_t Size, IRContext &Ctx) {
  Type *Seen = nullptr;
  for (const User *U : Alloc->users()) {
    Type *AccessTy = nullptr;
    if (const auto *LI = dyn_cast<LoadInst>(U)) {
      if (LI->getPointerOperand() != Alloc)
        continue;
      AccessTy = LI->getType();
    } else if (const auto *SI = dyn_cast<StoreInst>(U)) {
      if (SI->getPointerOperand() != Alloc)
        continue;
      AccessTy = SI->getAccessType();
    } else {
      continue;
    }
    if (Seen && Seen != AccessTy)
      return Ctx.getArrayTy(Ctx.getInt8Ty(), Size);
    Seen = AccessTy;
  }
  if (Seen && Seen->getSizeInBytes() == Size)
    return Seen;
  return Ctx.getArrayTy(Ctx.getInt8Ty(), Size);
}

} // namespace ompgpu

bool ompgpu::runHeapToStack(OpenMPOptContext &Ctx) {
  Module &M = Ctx.M;
  IRContext &IRCtx = M.getContext();
  bool Changed = false;

  EscapeConfig EC;
  EC.ClassifyCallArg = classifyOpenMPCallArg;

  // Post-dominator trees per function, built lazily.
  std::map<const Function *, std::unique_ptr<PostDominatorTree>> PDTs;
  auto GetPDT = [&](const Function *F) -> PostDominatorTree & {
    auto &Slot = PDTs[F];
    if (!Slot)
      Slot = std::make_unique<PostDominatorTree>(*F);
    return *Slot;
  };

  for (CallInst *Alloc : collectGlobalizationAllocs(M)) {
    const auto *SizeC = dyn_cast<ConstantInt>(Alloc->getArgOperand(0));
    if (!SizeC)
      continue;
    uint64_t Size = SizeC->getZExtValue();
    Function *F = Alloc->getFunction();

    // Check 1: the pointer must not be exposed to another thread.
    EscapeResult ER = analyzePointerEscape(Alloc, EC);
    if (ER.Escapes) {
      // HeapToShared may still apply; it emits its own remarks.
      continue;
    }

    // Check 2: the deallocation must always be reached.
    std::vector<CallInst *> Frees = findMatchingFrees(Alloc);
    bool FreeAlwaysReached = false;
    for (CallInst *Free : Frees)
      if (GetPDT(F).dominates(Free, Alloc))
        FreeAlwaysReached = true;
    if (!FreeAlwaysReached) {
      Ctx.Remarks.emit(
          RemarkId::OMP113, /*Missed=*/true, F->getName(),
          "could not move globalized variable to the stack: the matching "
          "deallocation is not always reached");
      continue;
    }

    // Rewrite: alloca + addrspacecast, drop the runtime calls.
    IRBuilder B(IRCtx);
    B.setInsertPoint(Alloc);
    Type *ElemTy = inferAllocatedType(Alloc, Size, IRCtx);
    Value *Stack = B.createAlloca(
        ElemTy, Alloc->hasName() ? Alloc->getName() + ".stack" : "h2s");
    Value *Generic =
        B.createAddrSpaceCast(Stack, AddrSpace::Generic, "h2s.cast");
    for (CallInst *Free : Frees) {
      // Keep the use-list consistent before erasing.
      Free->eraseFromParent();
    }
    Alloc->replaceAllUsesWith(Generic);
    Alloc->eraseFromParent();

    Ctx.Remarks.emit(RemarkId::OMP110, /*Missed=*/false, F->getName(),
                     "Moving globalized variable to the stack.");
    ++Ctx.Stats.HeapToStack;
    Changed = true;
    // Invalidate the post-dominator cache for this function.
    PDTs.erase(F);
  }

  if (Changed)
    Ctx.refresh();
  return Changed;
}
