//===- core/OpenMPOpt.h - OpenMP-aware optimization pass --------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution: OpenMP-aware inter-procedural analyses and
/// optimizations over device modules —
///   - aggressive internalization (Sec. IV),
///   - HeapToStack and HeapToShared deglobalization (Sec. IV-A),
///   - SPMDzation with side-effect guarding and grouping (Sec. IV-B3,
///     Fig. 7),
///   - custom state machine rewrite without function pointers
///     (Sec. IV-B2),
///   - runtime call folding (Sec. IV-C),
/// with optimization remarks and OpenMP 5.1 assumption handling
/// (Sec. IV-D). The configuration flags correspond to the artifact's
/// -openmp-opt-disable-* options.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_CORE_OPENMPOPT_H
#define OMPGPU_CORE_OPENMPOPT_H

#include "core/Remarks.h"

#include <cstdint>

namespace ompgpu {

class ExecutionProfile;
class Module;
class PassInstrumentation;

/// Stable pipeline name of runOpenMPOpt (pass instrumentation).
inline constexpr const char OpenMPOptPassName[] = "openmp-opt";

/// Pass configuration (artifact flags, Appendix E).
struct OpenMPOptConfig {
  bool DisableDeglobalization = false;   ///< heap-to-stack/shared off
  /// Disables only HeapToShared (for the Fig. 11 "heap-2-stack" subset).
  bool DisableHeapToShared = false;
  bool DisableSPMDization = false;       ///< SPMDzation off
  bool DisableStateMachineRewrite = false; ///< custom state machine off
  bool DisableFolding = false;           ///< runtime-call folding off
  bool DisableInternalization = false;   ///< internalization off
  /// Disables the side-effect grouping of Fig. 7 (guards each side effect
  /// separately, as in the prior work [11]); used by the ablation bench.
  bool DisableGuardGrouping = false;
  /// Hardware warp size used when folding __kmpc_get_warp_size.
  unsigned WarpSize = 32;
  /// Execution profile from a -profile-gen run (docs/pgo.md). When set,
  /// the custom state machine orders its if-cascade by dispatch hotness
  /// (OMP210), HeapToShared ranks allocations by touch frequency against
  /// SharedMemoryLimit (OMP211), and SPMDzation's guard grouping decision
  /// uses dynamic barrier counts (OMP212). Null reproduces the static
  /// heuristics exactly.
  const ExecutionProfile *Profile = nullptr;
  /// Shared-memory budget in bytes available to HeapToShared. The default
  /// is unlimited, which matches the pre-PGO behaviour; bench/pgo lowers
  /// it to make the ranking decision observable.
  uint64_t SharedMemoryLimit = UINT64_MAX;
};

/// Counters reported in Fig. 9.
struct OpenMPOptStats {
  unsigned InternalizedFunctions = 0;
  unsigned HeapToStack = 0;
  unsigned HeapToShared = 0;
  uint64_t HeapToSharedBytes = 0;
  unsigned SPMDzedKernels = 0;
  unsigned CustomStateMachines = 0;
  unsigned CustomStateMachinesWithFallback = 0;
  unsigned GuardedRegions = 0;
  unsigned FoldedExecMode = 0;
  unsigned FoldedParallelLevel = 0;
  unsigned FoldedLaunchParams = 0;
  /// \name PGO consumption counters (docs/pgo.md, compile-report "profile")
  /// @{
  unsigned PGOReorderedCascades = 0;   ///< OMP210 cascades ordered by heat
  unsigned PGORankedAllocations = 0;   ///< OMP211 allocs admitted by rank
  unsigned PGOExcludedAllocations = 0; ///< OMP211 allocs over the budget
  unsigned PGOGuardDecisions = 0;      ///< OMP212 profile-driven groupings
  /// @}
};

/// Runs the OpenMP optimization pass over \p M. Remarks are appended to
/// \p Remarks; statistics accumulate into \p Stats. Returns true if the
/// module changed. When \p PI is non-null every sub-pass runs under it,
/// giving per-sub-pass timing, change detection, and VerifyEach.
bool runOpenMPOpt(Module &M, const OpenMPOptConfig &Config,
                  OpenMPOptStats &Stats, RemarkCollector &Remarks,
                  PassInstrumentation *PI = nullptr);

} // namespace ompgpu

#endif // OMPGPU_CORE_OPENMPOPT_H
