//===- core/Remarks.cpp - Optimization remarks ------------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/Remarks.h"
#include "support/raw_ostream.h"

using namespace ompgpu;

void RemarkCollector::print(raw_ostream &OS) const {
  for (const Remark &R : Remarks) {
    OS << R.FunctionName << ": remark: " << R.Message << " [OMP"
       << (unsigned)R.Id << "] [-Rpass"
       << (R.Missed ? "-missed" : "") << "=openmp-opt]\n";
  }
}
