//===- core/HeapToShared.cpp - Globalization to static shared memory -------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "If heap-to-stack is not able to modify the storage location of a
/// variable, we employ a second inter-procedural transformation that aims
/// to replace the runtime calls with statically allocated shared memory.
/// [...] The transformation inter-procedurally determines if the runtime
/// allocation is only executed by the main thread of the OpenMP team."
/// (Sec. IV-A)
///
//===----------------------------------------------------------------------===//

#include "core/Passes.h"
#include "ir/IRBuilder.h"
#include "profile/Profile.h"

#include <algorithm>

using namespace ompgpu;

namespace ompgpu {
// Shared with HeapToStack.cpp.
std::vector<CallInst *> collectGlobalizationAllocs(Module &M);
std::vector<CallInst *> findMatchingFrees(CallInst *Alloc);
Type *inferAllocatedType(CallInst *Alloc, uint64_t Size, IRContext &Ctx);
} // namespace ompgpu

namespace {

/// A globalization allocation eligible for shared-memory promotion.
struct SharedCandidate {
  CallInst *Alloc;
  uint64_t Size;
  uint64_t Touches; ///< Profiled accesses of this allocation (0 without PGO).
};

} // namespace

bool ompgpu::runHeapToShared(OpenMPOptContext &Ctx) {
  Module &M = Ctx.M;
  IRContext &IRCtx = M.getContext();
  const OpenMPModuleInfo &Info = *Ctx.Info;
  bool Changed = false;

  // Collect the eligible allocations first: under a finite shared-memory
  // budget the conversion order matters, so eligibility and conversion
  // are separate phases.
  std::vector<SharedCandidate> Candidates;
  for (CallInst *Alloc : collectGlobalizationAllocs(M)) {
    Function *F = Alloc->getFunction();
    const auto *SizeC = dyn_cast<ConstantInt>(Alloc->getArgOperand(0));
    if (!SizeC) {
      Ctx.Remarks.emit(RemarkId::OMP113, /*Missed=*/true, F->getName(),
                       "could not replace globalized variable: the "
                       "allocation size is not a compile-time constant");
      continue;
    }
    uint64_t Size = SizeC->getZExtValue();

    if (!Info.isExecutedByInitialThreadOnly(*Alloc)) {
      // Creating a static allocation here would require scaling it by the
      // maximal number of threads in a team (Fig. 6b); report instead.
      Ctx.Remarks.emit(
          RemarkId::OMP112, /*Missed=*/true, F->getName(),
          "Found thread data sharing on the GPU. Expect degraded "
          "performance due to data globalization.");
      continue;
    }

    uint64_t Touches = 0;
    if (Ctx.Config.Profile && Alloc->hasAnchor())
      Touches = Ctx.Config.Profile->touches(Alloc->getAnchor());
    Candidates.push_back({Alloc, Size, Touches});
  }

  // PGO (docs/pgo.md): rank by profiled touch frequency so that under a
  // finite budget the most-accessed allocations win the fast memory. The
  // sort is stable: unprofiled candidates keep discovery order.
  const bool Ranked = Ctx.Config.Profile && !Candidates.empty();
  if (Ranked)
    std::stable_sort(Candidates.begin(), Candidates.end(),
                     [](const SharedCandidate &A, const SharedCandidate &B) {
                       return A.Touches > B.Touches;
                     });

  uint64_t BudgetUsed = 0;
  for (const SharedCandidate &C : Candidates) {
    CallInst *Alloc = C.Alloc;
    Function *F = Alloc->getFunction();
    uint64_t Size = C.Size;

    if (BudgetUsed + Size > Ctx.Config.SharedMemoryLimit) {
      Ctx.Remarks.emit(RemarkId::OMP211, /*Missed=*/true, F->getName(),
                       "globalized variable stays on the heap: " +
                           std::to_string(Size) +
                           " bytes exceed the remaining shared-memory "
                           "budget (" +
                           std::to_string(Ctx.Config.SharedMemoryLimit -
                                          BudgetUsed) +
                           " of " +
                           std::to_string(Ctx.Config.SharedMemoryLimit) +
                           " bytes left" +
                           (Ranked ? ", " + std::to_string(C.Touches) +
                                         " profiled touches"
                                   : std::string()) +
                           ").");
      if (Ranked)
        ++Ctx.Stats.PGOExcludedAllocations;
      continue;
    }
    BudgetUsed += Size;

    std::vector<CallInst *> Frees = findMatchingFrees(Alloc);

    // Replace the runtime allocation with a static shared-memory global.
    Type *ElemTy = inferAllocatedType(Alloc, Size, IRCtx);
    GlobalVariable *G = M.createGlobal(
        ElemTy, AddrSpace::Shared,
        (Alloc->hasName() ? Alloc->getName() : std::string("globalized")) +
            "_shared");
    G->setLinkage(Linkage::Internal);
    // The shared global inherits the allocation's profile anchor, so a
    // -profile-gen run over the transformed module still attributes
    // touches to the same source variable.
    if (Alloc->hasAnchor())
      G->setAnchor(Alloc->getAnchor());

    IRBuilder B(IRCtx);
    B.setInsertPoint(Alloc);
    Value *Generic =
        B.createAddrSpaceCast(G, AddrSpace::Generic, "h2shared.cast");
    for (CallInst *Free : Frees)
      Free->eraseFromParent();
    Alloc->replaceAllUsesWith(Generic);
    Alloc->eraseFromParent();

    Ctx.Remarks.emit(RemarkId::OMP111, /*Missed=*/false, F->getName(),
                     "Replaced globalized variable with " +
                         std::to_string(Size) + " bytes of shared memory.");
    if (Ranked) {
      Ctx.Remarks.emit(RemarkId::OMP211, /*Missed=*/false, F->getName(),
                       "Promoted globalized variable by profiled rank: " +
                           std::to_string(C.Touches) + " touches, " +
                           std::to_string(Size) + " bytes.");
      ++Ctx.Stats.PGORankedAllocations;
    }
    ++Ctx.Stats.HeapToShared;
    Ctx.Stats.HeapToSharedBytes += Size;
    Changed = true;
  }

  if (Changed)
    Ctx.refresh();
  return Changed;
}
