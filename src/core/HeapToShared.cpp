//===- core/HeapToShared.cpp - Globalization to static shared memory -------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "If heap-to-stack is not able to modify the storage location of a
/// variable, we employ a second inter-procedural transformation that aims
/// to replace the runtime calls with statically allocated shared memory.
/// [...] The transformation inter-procedurally determines if the runtime
/// allocation is only executed by the main thread of the OpenMP team."
/// (Sec. IV-A)
///
//===----------------------------------------------------------------------===//

#include "core/Passes.h"
#include "ir/IRBuilder.h"

using namespace ompgpu;

namespace ompgpu {
// Shared with HeapToStack.cpp.
std::vector<CallInst *> collectGlobalizationAllocs(Module &M);
std::vector<CallInst *> findMatchingFrees(CallInst *Alloc);
Type *inferAllocatedType(CallInst *Alloc, uint64_t Size, IRContext &Ctx);
} // namespace ompgpu

bool ompgpu::runHeapToShared(OpenMPOptContext &Ctx) {
  Module &M = Ctx.M;
  IRContext &IRCtx = M.getContext();
  const OpenMPModuleInfo &Info = *Ctx.Info;
  bool Changed = false;

  for (CallInst *Alloc : collectGlobalizationAllocs(M)) {
    Function *F = Alloc->getFunction();
    const auto *SizeC = dyn_cast<ConstantInt>(Alloc->getArgOperand(0));
    if (!SizeC) {
      Ctx.Remarks.emit(RemarkId::OMP113, /*Missed=*/true, F->getName(),
                       "could not replace globalized variable: the "
                       "allocation size is not a compile-time constant");
      continue;
    }
    uint64_t Size = SizeC->getZExtValue();

    if (!Info.isExecutedByInitialThreadOnly(*Alloc)) {
      // Creating a static allocation here would require scaling it by the
      // maximal number of threads in a team (Fig. 6b); report instead.
      Ctx.Remarks.emit(
          RemarkId::OMP112, /*Missed=*/true, F->getName(),
          "Found thread data sharing on the GPU. Expect degraded "
          "performance due to data globalization.");
      continue;
    }

    std::vector<CallInst *> Frees = findMatchingFrees(Alloc);

    // Replace the runtime allocation with a static shared-memory global.
    Type *ElemTy = inferAllocatedType(Alloc, Size, IRCtx);
    GlobalVariable *G = M.createGlobal(
        ElemTy, AddrSpace::Shared,
        (Alloc->hasName() ? Alloc->getName() : std::string("globalized")) +
            "_shared");
    G->setLinkage(Linkage::Internal);

    IRBuilder B(IRCtx);
    B.setInsertPoint(Alloc);
    Value *Generic =
        B.createAddrSpaceCast(G, AddrSpace::Generic, "h2shared.cast");
    for (CallInst *Free : Frees)
      Free->eraseFromParent();
    Alloc->replaceAllUsesWith(Generic);
    Alloc->eraseFromParent();

    Ctx.Remarks.emit(RemarkId::OMP111, /*Missed=*/false, F->getName(),
                     "Replaced globalized variable with " +
                         std::to_string(Size) + " bytes of shared memory.");
    ++Ctx.Stats.HeapToShared;
    Ctx.Stats.HeapToSharedBytes += Size;
    Changed = true;
  }

  if (Changed)
    Ctx.refresh();
  return Changed;
}
