//===- core/FoldRuntimeCalls.cpp - Runtime call specialization -------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime-call folding (Sec. IV-C): replaces device runtime queries with
/// constants when the answer is statically known through OpenMP-aware
/// inter-procedural analysis — the kernel execution mode, the parallel
/// level, and the launch parameters from constant num_teams/thread_limit
/// clauses.
///
//===----------------------------------------------------------------------===//

#include "core/Passes.h"
#include "ir/IRBuilder.h"

#include <optional>

using namespace ompgpu;

namespace {

/// All call sites of runtime function \p Fn outside the runtime bodies of
/// functions that cannot be reached anyway.
std::vector<CallInst *> collectCalls(Module &M, RTFn Fn) {
  std::vector<CallInst *> Calls;
  for (Function *F : M.functions())
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (auto *CI = dyn_cast<CallInst>(I))
          if (isRTFn(CI->getCalledFunction(), Fn))
            Calls.push_back(CI);
  return Calls;
}

// Note: no remarks are emitted for runtime-call folds — "runtime calls
// might not originate in user code" (Sec. V-B) — only statistics.
void foldCall(OpenMPOptContext &Ctx, CallInst *CI, Constant *C,
              const char *What, unsigned &Counter) {
  (void)Ctx;
  (void)What;
  CI->replaceAllUsesWith(C);
  CI->eraseFromParent();
  ++Counter;
}

/// The common execution mode of all kernels reaching \p F, if unique.
std::optional<ExecMode> commonReachingMode(const OpenMPModuleInfo &Info,
                                           const Function *F) {
  const std::set<Function *> &RK = Info.reachingKernels(F);
  if (RK.empty())
    return std::nullopt;
  std::optional<ExecMode> Mode;
  for (const Function *K : RK) {
    const KernelTargetInfo *KI = Info.getKernelInfo(K);
    if (!KI)
      return std::nullopt;
    if (Mode && *Mode != KI->Mode)
      return std::nullopt;
    Mode = KI->Mode;
  }
  return Mode;
}

} // namespace

bool ompgpu::runFoldRuntimeCalls(OpenMPOptContext &Ctx) {
  if (Ctx.Config.DisableFolding)
    return false;
  Module &M = Ctx.M;
  IRContext &IRCtx = M.getContext();
  const OpenMPModuleInfo &Info = *Ctx.Info;
  bool Changed = false;

  // Execution mode: __kmpc_is_spmd_exec_mode folds when every kernel
  // reaching the containing function runs in the same mode.
  for (CallInst *CI : collectCalls(M, RTFn::IsSPMDMode)) {
    std::optional<ExecMode> Mode =
        commonReachingMode(Info, CI->getFunction());
    if (!Mode)
      continue;
    foldCall(Ctx, CI, IRCtx.getInt1(*Mode == ExecMode::SPMD),
             "__kmpc_is_spmd_exec_mode", Ctx.Stats.FoldedExecMode);
    Changed = true;
  }

  // Parallel level: without nested parallelism the level is 0 in
  // sequential (team-scope) code and 1 inside parallel region wrappers.
  if (!Info.mayHaveNestedParallelism()) {
    for (CallInst *CI : collectCalls(M, RTFn::ParallelLevel)) {
      Function *F = CI->getFunction();
      std::optional<int> Level;
      if (Info.parallelWrappers().count(F)) {
        Level = 1;
      } else if (F->isKernel()) {
        const KernelTargetInfo *KI = Info.getKernelInfo(F);
        if (KI && KI->Mode == ExecMode::SPMD)
          Level = 0; // SPMD team scope: every thread is at level 0
        else if (Info.isExecutedByInitialThreadOnly(*CI))
          Level = 0; // generic sequential region
      } else if (Info.isFunctionMainThreadOnly(F)) {
        Level = 0;
      }
      if (!Level)
        continue;
      foldCall(Ctx, CI, IRCtx.getInt32(*Level), "__kmpc_parallel_level",
               Ctx.Stats.FoldedParallelLevel);
      Changed = true;
    }
  }

  // Launch parameters: constant clauses fold the grid/block queries.
  auto FoldLaunchParam = [&](RTFn Fn, auto GetValue, const char *Name) {
    for (CallInst *CI : collectCalls(M, Fn)) {
      const std::set<Function *> &RK =
          Info.reachingKernels(CI->getFunction());
      if (RK.empty())
        continue;
      std::optional<int> Val;
      bool Consistent = true;
      for (const Function *K : RK) {
        int V = GetValue(K->getKernelEnvironment());
        if (V <= 0 || (Val && *Val != V)) {
          Consistent = false;
          break;
        }
        Val = V;
      }
      if (!Consistent || !Val)
        continue;
      foldCall(Ctx, CI, IRCtx.getInt32(*Val), Name,
               Ctx.Stats.FoldedLaunchParams);
      Changed = true;
    }
  };
  FoldLaunchParam(
      RTFn::HardwareNumThreads,
      [](const KernelEnvironment &E) { return E.MaxThreads; },
      "__kmpc_get_hardware_num_threads_in_block");
  FoldLaunchParam(
      RTFn::GetNumTeams,
      [](const KernelEnvironment &E) { return E.NumTeams; },
      "omp_get_num_teams");

  // The warp size is a property of the target.
  for (CallInst *CI : collectCalls(M, RTFn::WarpSize)) {
    foldCall(Ctx, CI, IRCtx.getInt32(Ctx.Config.WarpSize),
             "__kmpc_get_warp_size", Ctx.Stats.FoldedLaunchParams);
    Changed = true;
  }

  if (Changed)
    Ctx.refresh();
  return Changed;
}
