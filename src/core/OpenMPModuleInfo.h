//===- core/OpenMPModuleInfo.h - OpenMP-aware module analysis ---*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The OpenMP-aware inter-procedural analysis underlying all the
/// optimizations (Sec. IV): it recovers OpenMP semantics from the runtime
/// calls the front-end emitted — kernels and their execution modes,
/// parallel regions, which kernels reach each function, and whether an
/// instruction is executed only by the initial ("main") thread of a team
/// (the AAExecutionDomain-style analysis).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_CORE_OPENMPMODULEINFO_H
#define OMPGPU_CORE_OPENMPMODULEINFO_H

#include "analysis/CallGraph.h"
#include "frontend/OMPRuntime.h"
#include "ir/Module.h"

#include <map>
#include <optional>
#include <set>
#include <vector>

namespace ompgpu {

/// Static description of one target kernel.
struct KernelTargetInfo {
  Function *Kernel = nullptr;
  CallInst *InitCall = nullptr;
  std::vector<CallInst *> DeinitCalls;
  ExecMode Mode = ExecMode::Generic;
  bool UseGenericStateMachine = false;
  /// The branch splitting main thread from workers, and its targets.
  BrInst *InitBranch = nullptr;
  BasicBlock *UserCodeBB = nullptr;
  BasicBlock *WorkerBB = nullptr; ///< null unless a state machine exists
};

/// OpenMP-aware view of one module.
class OpenMPModuleInfo {
public:
  explicit OpenMPModuleInfo(Module &M);

  Module &getModule() const { return M; }
  const CallGraph &getCallGraph() const { return CG; }

  const std::vector<KernelTargetInfo> &kernels() const { return Kernels; }
  const KernelTargetInfo *getKernelInfo(const Function *F) const;

  /// All __kmpc_parallel_51 call sites in the module.
  const std::vector<CallInst *> &parallelSites() const {
    return ParallelSites;
  }

  /// Parallel-region wrapper functions (first argument of parallel_51
  /// sites when statically known).
  const std::set<Function *> &parallelWrappers() const {
    return ParallelWrappers;
  }

  /// Kernels whose execution may reach \p F (directly or through the
  /// parallel-region machinery).
  const std::set<Function *> &reachingKernels(const Function *F) const;

  /// True if \p F may be called from outside the module's visible call
  /// sites (externally visible and not a kernel entry).
  bool hasUnknownCallers(const Function *F) const;

  /// True if \p I is executed only by the initial (main) thread of each
  /// team, for every kernel that reaches it. Loads, stores, and runtime
  /// allocations proven main-thread-only are the targets of HeapToShared
  /// and need guards under SPMDzation.
  bool isExecutedByInitialThreadOnly(const Instruction &I) const;

  /// True if \p F is only invoked from main-thread-only program points.
  bool isFunctionMainThreadOnly(const Function *F) const;

  /// The blocks of a generic-mode kernel executed only by the main thread
  /// (empty for SPMD kernels / unrecognized patterns).
  const std::set<const BasicBlock *> &
  mainOnlyBlocks(const Function *Kernel) const;

  /// True if \p F is (a clone of) a known device runtime function.
  static bool isOpenMPRuntimeFunction(const Function *F);

  /// True if the module contains nested parallelism (a parallel site
  /// reachable from within a parallel region wrapper).
  bool mayHaveNestedParallelism() const { return HasNestedParallelism; }

private:
  Module &M;
  CallGraph CG;
  std::vector<KernelTargetInfo> Kernels;
  std::vector<CallInst *> ParallelSites;
  std::set<Function *> ParallelWrappers;
  std::map<const Function *, std::set<Function *>> ReachingKernelsMap;
  /// Per kernel: blocks executed only by the main thread.
  std::map<const Function *, std::set<const BasicBlock *>> MainOnlyBlocks;
  std::map<const Function *, bool> FunctionMainOnly;
  bool HasNestedParallelism = false;

  void analyzeKernels();
  void analyzeReachability();
  void analyzeMainOnly();
};

} // namespace ompgpu

#endif // OMPGPU_CORE_OPENMPMODULEINFO_H
