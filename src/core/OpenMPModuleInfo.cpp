//===- core/OpenMPModuleInfo.cpp - OpenMP-aware module analysis ------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "core/OpenMPModuleInfo.h"
#include "analysis/CFG.h"
#include "support/STLExtras.h"

using namespace ompgpu;

OpenMPModuleInfo::OpenMPModuleInfo(Module &M) : M(M), CG(M) {
  analyzeKernels();
  analyzeReachability();
  analyzeMainOnly();
}

bool OpenMPModuleInfo::isOpenMPRuntimeFunction(const Function *F) {
  const std::string &N = F->getName();
  return N.rfind("__kmpc_", 0) == 0 || N.rfind("omp_", 0) == 0;
}

void OpenMPModuleInfo::analyzeKernels() {
  for (Function *F : M.functions()) {
    // Collect parallel region call sites module-wide.
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB) {
        auto *CI = dyn_cast<CallInst>(I);
        if (!CI || !isRTFn(CI->getCalledFunction(), RTFn::Parallel51))
          continue;
        // Skip the runtime's own body if it ever contained such a call.
        if (isOpenMPRuntimeFunction(F))
          continue;
        ParallelSites.push_back(CI);
        if (auto *W = dyn_cast<Function>(CI->getArgOperand(0)))
          ParallelWrappers.insert(W);
      }

    if (!F->isKernel() || F->isDeclaration())
      continue;

    KernelTargetInfo KI;
    KI.Kernel = F;

    for (Instruction *I : *F->getEntryBlock()) {
      auto *CI = dyn_cast<CallInst>(I);
      if (CI && isRTFn(CI->getCalledFunction(), RTFn::TargetInit)) {
        KI.InitCall = CI;
        break;
      }
    }
    if (!KI.InitCall)
      continue; // not a recognizable target region

    if (const auto *ModeC =
            dyn_cast<ConstantInt>(KI.InitCall->getArgOperand(0)))
      KI.Mode = (ModeC->getValue() & OMP_TGT_EXEC_MODE_SPMD)
                    ? ExecMode::SPMD
                    : ExecMode::Generic;
    if (const auto *SMC =
            dyn_cast<ConstantInt>(KI.InitCall->getArgOperand(1)))
      KI.UseGenericStateMachine = !SMC->isZero();

    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (auto *CI = dyn_cast<CallInst>(I))
          if (isRTFn(CI->getCalledFunction(), RTFn::TargetDeinit))
            KI.DeinitCalls.push_back(CI);

    // Pattern: %c = icmp eq (%init, -1); br %c, %user, %worker_or_exit.
    for (User *U : KI.InitCall->users()) {
      auto *Cmp = dyn_cast<ICmpInst>(U);
      if (!Cmp || Cmp->getPredicate() != ICmpPred::EQ)
        continue;
      const auto *CmpRHS = dyn_cast<ConstantInt>(Cmp->getRHS());
      if (!CmpRHS || CmpRHS->getValue() != -1)
        continue;
      for (User *CU : Cmp->users()) {
        auto *Br = dyn_cast<BrInst>(CU);
        if (!Br || !Br->isConditional())
          continue;
        KI.InitBranch = Br;
        KI.UserCodeBB = Br->getSuccessor(0);
        BasicBlock *Other = Br->getSuccessor(1);
        // A bare `ret` block is the exit; anything else is a front-end
        // state machine (the LLVM 12 scheme).
        bool IsExit = Other->size() == 1 && isa<RetInst>(Other->front());
        KI.WorkerBB = IsExit ? nullptr : Other;
        break;
      }
      if (KI.InitBranch)
        break;
    }

    Kernels.push_back(KI);
  }

  // Nested parallelism: a parallel site inside (or reachable from) a
  // parallel region wrapper.
  std::set<Function *> FromWrappers;
  for (Function *W : ParallelWrappers) {
    std::set<Function *> R = CG.reachableFrom(W);
    FromWrappers.insert(R.begin(), R.end());
  }
  for (CallInst *Site : ParallelSites)
    if (FromWrappers.count(Site->getFunction()))
      HasNestedParallelism = true;
}

void OpenMPModuleInfo::analyzeReachability() {
  for (const KernelTargetInfo &KI : Kernels) {
    std::set<Function *> R = CG.reachableFrom(KI.Kernel);
    for (Function *F : R)
      ReachingKernelsMap[F].insert(KI.Kernel);
  }
}

void OpenMPModuleInfo::analyzeMainOnly() {
  for (const KernelTargetInfo &KI : Kernels) {
    if (KI.Mode != ExecMode::Generic || !KI.UserCodeBB)
      continue;
    std::set<const BasicBlock *> &MainOnly = MainOnlyBlocks[KI.Kernel];

    // Blocks reachable from the user-code entry...
    std::set<const BasicBlock *> FromUser;
    std::vector<const BasicBlock *> Work{KI.UserCodeBB};
    while (!Work.empty()) {
      const BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!FromUser.insert(BB).second)
        continue;
      for (const BasicBlock *S : const_cast<BasicBlock *>(BB)->successors())
        Work.push_back(S);
    }
    // ... minus anything workers can also reach (their state machine and
    // the shared exit block) and the entry.
    std::set<const BasicBlock *> FromWorker;
    const BasicBlock *WorkerEntry =
        KI.WorkerBB ? KI.WorkerBB : KI.InitBranch->getSuccessor(1);
    Work.push_back(WorkerEntry);
    while (!Work.empty()) {
      const BasicBlock *BB = Work.back();
      Work.pop_back();
      if (!FromWorker.insert(BB).second)
        continue;
      for (const BasicBlock *S : const_cast<BasicBlock *>(BB)->successors())
        Work.push_back(S);
    }
    for (const BasicBlock *BB : FromUser)
      if (!FromWorker.count(BB) && BB != KI.Kernel->getEntryBlock())
        MainOnly.insert(BB);
  }
}

const KernelTargetInfo *
OpenMPModuleInfo::getKernelInfo(const Function *F) const {
  for (const KernelTargetInfo &KI : Kernels)
    if (KI.Kernel == F)
      return &KI;
  return nullptr;
}

const std::set<Function *> &
OpenMPModuleInfo::reachingKernels(const Function *F) const {
  static const std::set<Function *> Empty;
  auto It = ReachingKernelsMap.find(F);
  return It == ReachingKernelsMap.end() ? Empty : It->second;
}

const std::set<const BasicBlock *> &
OpenMPModuleInfo::mainOnlyBlocks(const Function *Kernel) const {
  static const std::set<const BasicBlock *> Empty;
  auto It = MainOnlyBlocks.find(Kernel);
  return It == MainOnlyBlocks.end() ? Empty : It->second;
}

bool OpenMPModuleInfo::hasUnknownCallers(const Function *F) const {
  return F->hasExternalLinkage() && !F->isKernel();
}

bool OpenMPModuleInfo::isFunctionMainThreadOnly(const Function *F) const {
  auto It = FunctionMainOnly.find(F);
  if (It != FunctionMainOnly.end())
    return It->second;
  auto &Self = const_cast<OpenMPModuleInfo &>(*this);
  // Conservative default breaks recursion cycles.
  Self.FunctionMainOnly[F] = false;

  if (F->isKernel() || F->isDeclaration() || isOpenMPRuntimeFunction(F))
    return false;
  if (hasUnknownCallers(F) || F->hasAddressTaken())
    return false;
  if (ParallelWrappers.count(const_cast<Function *>(F)))
    return false;

  const std::vector<CallInst *> &Sites = CG.callSitesOf(F);
  if (Sites.empty())
    return false;
  for (const CallInst *CS : Sites)
    if (!isExecutedByInitialThreadOnly(*CS))
      return false;

  Self.FunctionMainOnly[F] = true;
  return true;
}

bool OpenMPModuleInfo::isExecutedByInitialThreadOnly(
    const Instruction &I) const {
  const Function *F = I.getFunction();
  if (!F)
    return false;
  if (F->isKernel()) {
    auto It = MainOnlyBlocks.find(F);
    if (It == MainOnlyBlocks.end())
      return false;
    return It->second.count(I.getParent());
  }
  return isFunctionMainThreadOnly(F);
}
