//===- gpusim/DeviceGroup.cpp - Multi-device simulation group --------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "gpusim/DeviceGroup.h"
#include "support/FileSystem.h"
#include "support/Hashing.h"

#include <algorithm>
#include <cmath>

using namespace ompgpu;

//===----------------------------------------------------------------------===//
// DeviceGroupSpec
//===----------------------------------------------------------------------===//

bool DeviceGroupSpec::isHomogeneous() const {
  if (Devices.size() < 2)
    return true;
  uint64_t First = archFingerprint(Devices.front());
  for (size_t I = 1; I < Devices.size(); ++I)
    if (archFingerprint(Devices[I]) != First)
      return false;
  return true;
}

Error DeviceGroupSpec::validate() const {
  auto Fail = [](const std::string &Msg) {
    return Error::failure("group spec: " + Msg);
  };
  if (Name.empty())
    return Fail("name must be non-empty");
  if (Devices.empty())
    return Fail("devices must name at least one device");
  if (Devices.size() > MaxGroupDevices)
    return Fail("devices lists " + std::to_string(Devices.size()) +
                " entries, more than the supported maximum of " +
                std::to_string(MaxGroupDevices));
  for (size_t I = 0; I < Devices.size(); ++I)
    if (Error E = Devices[I].validate())
      return Fail("devices[" + std::to_string(I) + "]: " + E.message());
  if (HasPeerLink) {
    if (!(PeerBytesPerCycle > 0.0) || !std::isfinite(PeerBytesPerCycle))
      return Fail("peer_link.bytes_per_cycle must be positive");
    if (PeerLatencyCycles == 0)
      return Fail("peer_link.latency_cycles must be non-zero");
  }
  return Error::success();
}

DeviceGroupSpec ompgpu::homogeneousGroupSpec(const ArchSpec &Arch,
                                             unsigned N) {
  DeviceGroupSpec Spec;
  Spec.Name = Arch.Name + "x" + std::to_string(N);
  Spec.Devices.assign(N, Arch);
  return Spec;
}

json::Value ompgpu::deviceGroupSpecToJSON(const DeviceGroupSpec &Spec) {
  json::Value Doc = json::Value::makeObject();
  Doc.set("schema_version", DeviceGroupSchemaVersion).set("name", Spec.Name);
  json::Value Devs = json::Value::makeArray();
  for (const ArchSpec &A : Spec.Devices)
    Devs.push_back(archSpecToJSON(A));
  Doc.set("devices", std::move(Devs));
  if (Spec.HasPeerLink) {
    json::Value Peer = json::Value::makeObject();
    Peer.set("bytes_per_cycle", Spec.PeerBytesPerCycle)
        .set("latency_cycles", Spec.PeerLatencyCycles);
    Doc.set("peer_link", std::move(Peer));
  }
  return Doc;
}

Expected<DeviceGroupSpec>
ompgpu::parseDeviceGroupSpec(const json::Value &Doc) {
  if (!Doc.isObject())
    return Error::failure("group spec: document is not an object");
  for (const auto &[Key, Val] : Doc.members()) {
    (void)Val;
    if (Key != "schema_version" && Key != "name" && Key != "devices" &&
        Key != "peer_link")
      return Error::failure("group spec: unknown field '" + Key + "'");
  }

  const json::Value *SV = Doc.find("schema_version");
  if (!SV || SV->kind() != json::Value::Kind::Integer)
    return Error::failure("group spec: missing integer 'schema_version'");
  int64_t Version = SV->asInt();
  if (Version < 1 || Version > (int64_t)DeviceGroupSchemaVersion)
    return Error::failure("group spec: unsupported schema_version " +
                          std::to_string(Version) + " (expected 1.." +
                          std::to_string(DeviceGroupSchemaVersion) + ")");
  const json::Value *Name = Doc.find("name");
  if (!Name || !Name->isString() || Name->asString().empty())
    return Error::failure("group spec: missing non-empty string 'name'");

  const json::Value *Devs = Doc.find("devices");
  if (!Devs || !Devs->isArray() || Devs->empty())
    return Error::failure(
        "group spec: 'devices' must be a non-empty array of architecture "
        "names, *.json paths, or embedded arch-spec objects");

  DeviceGroupSpec Spec;
  Spec.Name = Name->asString();
  for (size_t I = 0; I < Devs->size(); ++I) {
    const json::Value &D = (*Devs)[I];
    if (D.isString()) {
      Expected<ArchSpec> A = resolveArch(D.asString());
      if (!A)
        return Error::failure("group spec: devices[" + std::to_string(I) +
                              "]: " + A.message());
      Spec.Devices.push_back(std::move(*A));
    } else if (D.isObject()) {
      Expected<ArchSpec> A = parseArchSpec(D);
      if (!A)
        return Error::failure("group spec: devices[" + std::to_string(I) +
                              "]: " + A.message());
      Spec.Devices.push_back(std::move(*A));
    } else {
      return Error::failure("group spec: devices[" + std::to_string(I) +
                            "] must be a string or an arch-spec object");
    }
  }

  if (const json::Value *Peer = Doc.find("peer_link")) {
    if (!Peer->isObject())
      return Error::failure("group spec: 'peer_link' must be an object");
    for (const auto &[Key, Val] : Peer->members()) {
      (void)Val;
      if (Key != "bytes_per_cycle" && Key != "latency_cycles")
        return Error::failure("group spec: unknown field 'peer_link." + Key +
                              "'");
    }
    const json::Value *BPC = Peer->find("bytes_per_cycle");
    if (!BPC || !BPC->isNumber())
      return Error::failure(
          "group spec: missing number 'peer_link.bytes_per_cycle'");
    const json::Value *Lat = Peer->find("latency_cycles");
    if (!Lat || Lat->kind() != json::Value::Kind::Integer ||
        Lat->asInt() < 0)
      return Error::failure("group spec: missing non-negative integer "
                            "'peer_link.latency_cycles'");
    Spec.HasPeerLink = true;
    Spec.PeerBytesPerCycle = BPC->asDouble();
    Spec.PeerLatencyCycles = (unsigned)Lat->asInt();
  }

  if (Error E = Spec.validate())
    return E;
  return Spec;
}

Expected<DeviceGroupSpec>
ompgpu::parseDeviceGroupSpecText(const std::string &Text) {
  json::Value Doc;
  std::string ParseError;
  if (!json::parse(Text, Doc, &ParseError))
    return Error::failure("group spec: malformed JSON: " + ParseError);
  return parseDeviceGroupSpec(Doc);
}

Expected<DeviceGroupSpec>
ompgpu::resolveDeviceGroupSpec(const std::string &Path) {
  Expected<std::string> Text = readTextFile(Path);
  if (!Text)
    return Error::failure("group spec '" + Path + "': " + Text.message());
  return parseDeviceGroupSpecText(*Text);
}

//===----------------------------------------------------------------------===//
// DeviceGroupStats
//===----------------------------------------------------------------------===//

double DeviceGroupStats::loadImbalance() const {
  uint64_t Max = 0, Sum = 0;
  for (const PerDevice &D : Devices) {
    Max = std::max(Max, D.BusyCycles);
    Sum += D.BusyCycles;
  }
  if (Sum == 0 || Devices.empty())
    return 1.0;
  double Mean = (double)Sum / (double)Devices.size();
  return (double)Max / Mean;
}

double DeviceGroupStats::communicationFraction() const {
  if (MakespanCycles == 0)
    return 0.0;
  double F = (double)CommCriticalCycles / (double)MakespanCycles;
  return F > 1.0 ? 1.0 : F;
}

json::Value DeviceGroupStats::toJSON() const {
  json::Value Doc = json::Value::makeObject();
  json::Value Devs = json::Value::makeArray();
  for (size_t I = 0; I < Devices.size(); ++I) {
    const PerDevice &D = Devices[I];
    json::Value Row = json::Value::makeObject();
    Row.set("index", (uint64_t)I)
        .set("arch", D.Arch)
        .set("launches", D.Launches)
        .set("kernel_cycles", D.KernelCycles)
        .set("comm_cycles", D.CommCycles)
        .set("busy_cycles", D.BusyCycles)
        .set("bytes_to_device", D.BytesToDevice)
        .set("bytes_from_device", D.BytesFromDevice);
    Devs.push_back(std::move(Row));
  }
  Doc.set("devices", std::move(Devs))
      .set("host_link_bytes", HostLinkBytes)
      .set("host_link_cycles", HostLinkCycles)
      .set("peer_bytes", PeerBytes)
      .set("peer_cycles", PeerCycles)
      .set("makespan_cycles", MakespanCycles)
      .set("sum_device_cycles", SumDeviceCycles)
      .set("comm_critical_cycles", CommCriticalCycles)
      .set("sync_points", SyncPoints)
      .set("load_imbalance", loadImbalance())
      .set("communication_fraction", communicationFraction());
  return Doc;
}

//===----------------------------------------------------------------------===//
// DeviceGroup
//===----------------------------------------------------------------------===//

DeviceGroup::DeviceGroup(DeviceGroupSpec S) : Spec(std::move(S)) {
  for (const ArchSpec &A : Spec.Devices) {
    Dev.push_back(std::make_unique<GPUDevice>(A.Machine));
    DeviceGroupStats::PerDevice PD;
    PD.Arch = A.Name;
    Stats.Devices.push_back(std::move(PD));
  }
  PhaseCycles.assign(Dev.size(), 0);
  PhaseCommCycles.assign(Dev.size(), 0);
}

DeviceGroup::~DeviceGroup() = default;

KernelStats DeviceGroup::launch(unsigned I, Module &M, Function *Kernel,
                                const LaunchConfig &Config,
                                const std::vector<uint64_t> &Args,
                                const NativeRuntimeBinding &RTL) {
  KernelStats S = Dev[I]->launchKernel(M, Kernel, Config, Args, RTL);

  DeviceGroupStats::PerDevice &PD = Stats.Devices[I];
  PD.Launches += 1;
  PD.KernelCycles += S.Cycles;
  PD.CommCycles += S.TransferCycles;
  PD.BytesToDevice += S.BytesToDevice;
  PD.BytesFromDevice += S.BytesFromDevice;
  Stats.HostLinkBytes += S.BytesToDevice + S.BytesFromDevice;
  Stats.HostLinkCycles += S.TransferCycles;

  uint64_t Cost = S.totalCycles();
  // Deterministic completion jitter: a seed/device/launch hash, bounded
  // well below any real kernel. Changes queue timing, never memory.
  if (PerturbSeed) {
    uint64_t H = hashCombine(hashCombine(PerturbSeed, I), PD.Launches);
    Cost += H % 1000;
  }
  PhaseCycles[I] += Cost;
  PhaseCommCycles[I] += S.TransferCycles;
  return S;
}

void DeviceGroup::syncAll() {
  uint64_t Adv = 0, AdvComm = 0;
  for (size_t I = 0; I < Dev.size(); ++I) {
    if (PhaseCycles[I] > Adv) {
      Adv = PhaseCycles[I];
      AdvComm = PhaseCommCycles[I];
    }
    Stats.Devices[I].BusyCycles += PhaseCycles[I];
    Stats.SumDeviceCycles += PhaseCycles[I];
    PhaseCycles[I] = 0;
    PhaseCommCycles[I] = 0;
  }
  if (Adv == 0)
    return; // idle barrier: no frontier advance, no sync point recorded
  Stats.MakespanCycles += Adv;
  Stats.CommCriticalCycles += AdvComm;
  Stats.SyncPoints += 1;
}

void DeviceGroup::chargeHostTransfer(unsigned I, uint64_t Bytes,
                                     bool ToDevice) {
  if (Bytes == 0)
    return;
  syncAll(); // the host link is one shared, serializing resource
  uint64_t Cycles = hostTransferCycles(Dev[I]->getMachine(), Bytes);
  Stats.MakespanCycles += Cycles;
  Stats.SumDeviceCycles += Cycles;
  Stats.CommCriticalCycles += Cycles;
  Stats.HostLinkBytes += Bytes;
  Stats.HostLinkCycles += Cycles;
  DeviceGroupStats::PerDevice &PD = Stats.Devices[I];
  PD.CommCycles += Cycles;
  PD.BusyCycles += Cycles;
  if (ToDevice)
    PD.BytesToDevice += Bytes;
  else
    PD.BytesFromDevice += Bytes;
}

void DeviceGroup::chargePeerTransfer(unsigned Src, unsigned Dst,
                                     uint64_t Bytes) {
  if (Bytes == 0 || Src == Dst)
    return;
  if (!Spec.HasPeerLink) {
    // Host-staged path: download from the source, upload to the
    // destination — two serialized host-link hops. A direct-link spec
    // replaces both with one peer hop, the observable win.
    chargeHostTransfer(Src, Bytes, /*ToDevice=*/false);
    chargeHostTransfer(Dst, Bytes, /*ToDevice=*/true);
    return;
  }
  syncAll();
  uint64_t Cycles =
      Spec.PeerLatencyCycles +
      (uint64_t)std::ceil((double)Bytes / Spec.PeerBytesPerCycle);
  Stats.MakespanCycles += Cycles;
  Stats.SumDeviceCycles += Cycles;
  Stats.CommCriticalCycles += Cycles;
  Stats.PeerBytes += Bytes;
  Stats.PeerCycles += Cycles;
  Stats.Devices[Src].CommCycles += Cycles;
  Stats.Devices[Src].BusyCycles += Cycles;
  Stats.Devices[Src].BytesFromDevice += Bytes;
  Stats.Devices[Dst].BytesToDevice += Bytes;
}

const DeviceGroupStats &DeviceGroup::stats() {
  syncAll();
  return Stats;
}
