//===- gpusim/Device.cpp - Simulated GPU device -----------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IR interpreter behind GPUDevice::launchKernel. Each GPU thread is a
/// resumable interpreter with its own cycle clock and local-memory arena;
/// blocks execute one at a time (atomics are therefore trivially
/// sequentially consistent); named barriers align the clocks of their
/// participants, which is what makes state-machine idling, guarding
/// barriers, and worker hand-offs show up in kernel time.
///
//===----------------------------------------------------------------------===//

#include "gpusim/Device.h"
#include "analysis/ThreadValueAnalysis.h"
#include "gpusim/ResourceEstimator.h"
#include "gpusim/SimThread.h"
#include "ir/Module.h"
#include "profile/Profile.h"
#include "resilience/FaultInjector.h"
#include "support/ErrorHandling.h"
#include "support/STLExtras.h"
#include "support/raw_ostream.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <set>

using namespace ompgpu;

RTLBlockStateBase::~RTLBlockStateBase() = default;
SimThread::~SimThread() = default;

GPUDevice::GPUDevice(MachineModel MM) : Machine(MM) {
  GlobalArena.resize(1024);
}

GPUDevice::~GPUDevice() = default;

uint64_t GPUDevice::allocate(uint64_t Bytes) {
  GlobalBrk = (GlobalBrk + 15) & ~15ull; // 16-byte alignment
  uint64_t Offset = GlobalBrk;
  GlobalBrk += Bytes;
  if (GlobalBrk > GlobalArena.size())
    GlobalArena.resize(std::max<uint64_t>(GlobalBrk, GlobalArena.size() * 2),
                       0);
  uint64_t Addr = makeSimAddr(Seg::Global, Offset);
  Allocations[Addr] = Bytes;
  return Addr;
}

void GPUDevice::memcpyToDevice(uint64_t Addr, const void *Src,
                               uint64_t Bytes) {
  assert(getSimAddrSeg(Addr) == Seg::Global && "host copies target global");
  uint64_t Off = getSimAddrOffset(Addr);
  assert(Off + Bytes <= GlobalArena.size() && "device copy out of bounds");
  std::memcpy(GlobalArena.data() + Off, Src, Bytes);
}

void GPUDevice::memcpyFromDevice(void *Dst, uint64_t Addr,
                                 uint64_t Bytes) const {
  assert(getSimAddrSeg(Addr) == Seg::Global && "host copies target global");
  uint64_t Off = getSimAddrOffset(Addr);
  assert(Off + Bytes <= GlobalArena.size() && "device copy out of bounds");
  std::memcpy(Dst, GlobalArena.data() + Off, Bytes);
}

//===----------------------------------------------------------------------===//
// Per-launch static information
//===----------------------------------------------------------------------===//

namespace {

/// Coalescing classification of a memory access to global memory.
enum class GlobalAccessClass : uint8_t { Uniform, Coalesced, Uncoalesced };

/// Per-function layout and static cost data, built once per launch.
struct FunctionInfo {
  std::map<const Value *, unsigned> Slot;
  unsigned NumSlots = 0;
  std::map<const Instruction *, GlobalAccessClass> GlobalClass;
  /// Cached instruction vectors for O(1) indexed fetch.
  std::map<const BasicBlock *, std::vector<const Instruction *>> BlockInsts;
};

uint64_t bitsOfDouble(double D) { return std::bit_cast<uint64_t>(D); }
double doubleOfBits(uint64_t B) { return std::bit_cast<double>(B); }

/// Normalizes an integer register value to its type's width
/// (sign-extended representation).
int64_t normalizeInt(const Type *Ty, int64_t V) {
  switch (Ty->getKind()) {
  case Type::Kind::Int1:
    return V & 1;
  case Type::Kind::Int8:
    return (int8_t)V;
  case Type::Kind::Int32:
    return (int32_t)V;
  default:
    return V;
  }
}

/// One call frame of a simulated thread.
struct Frame {
  const Function *F = nullptr;
  const FunctionInfo *FI = nullptr;
  std::vector<uint64_t> Regs;
  const BasicBlock *CurBB = nullptr;
  const BasicBlock *PrevBB = nullptr;
  size_t InstIdx = 0;
  /// The call in the *caller's* frame awaiting this frame's return value.
  const CallInst *CallSite = nullptr;
  uint64_t LocalWatermark = 0;
};

class Simulation;

/// Thread status in the cooperative scheduler.
enum class ThreadStatus : uint8_t { Runnable, AtBarrier, Finished, Trapped };

/// A simulated GPU thread.
class ThreadSim final : public SimThread {
public:
  Simulation *Sim = nullptr;
  unsigned Tid = 0;
  std::vector<Frame> Stack;
  std::vector<uint8_t> LocalArena;
  uint64_t LocalBrk = 0;
  uint64_t Clock = 0;
  double SpillDebt = 0.0;
  ThreadStatus Status = ThreadStatus::Runnable;
  unsigned WaitBarrierId = 0;
  unsigned WaitBarrierCount = 0;

  // SimThread interface (defined after Simulation).
  unsigned getThreadId() const override { return Tid; }
  unsigned getBlockDim() const override;
  unsigned getBlockId() const override;
  unsigned getGridDim() const override;
  unsigned getWarpSize() const override;
  uint64_t getDataSharingSlabBytes() const override;
  RTLBlockStateBase &getRTLState() override;
  bool readMemory(uint64_t Addr, void *Dst, uint64_t Bytes) override;
  bool writeMemory(uint64_t Addr, const void *Src, uint64_t Bytes) override;
  uint64_t sharedStackAlloc(uint64_t Bytes) override;
  void sharedStackFree(uint64_t Bytes) override;
  uint64_t heapAlloc(uint64_t Bytes) override;
  void heapFree(uint64_t Bytes) override;
  void setSharedRegionCost(uint64_t Addr, uint64_t Bytes,
                           unsigned CyclesPerAccess) override;
  void clearSharedRegionCost(uint64_t Addr) override;
};

/// Whole-launch interpreter state: module layout plus the current block.
class Simulation {
public:
  GPUDevice &Dev;
  Module &M;
  const LaunchConfig &Config;
  const NativeRuntimeBinding &RTL;
  const CostParams &Costs;
  KernelStats &Stats;

  // Module layout.
  std::map<const GlobalVariable *, uint64_t> GlobalAddrs;
  std::map<const GlobalVariable *, uint64_t> SharedOffsets;
  uint64_t StaticSharedBytes = 0;
  std::vector<const Function *> CodeTable;
  std::map<const Function *, uint64_t> CodeAddrs;
  std::map<const Function *, std::unique_ptr<FunctionInfo>> FnInfo;

  // Current block.
  unsigned BlockId = 0;
  std::vector<std::unique_ptr<ThreadSim>> Threads;
  std::vector<uint8_t> SharedArena;
  uint64_t SharedStackBrk = 0;     ///< within the data-sharing slab
  uint64_t SharedStackPeak = 0;
  uint64_t BlockHeapCur = 0;
  uint64_t BlockHeapPeak = 0;
  /// Direct-mapped L2 tag array (offset/LineBytes tags; 0 = empty).
  std::vector<uint64_t> CacheTags;
  std::unique_ptr<RTLBlockStateBase> RTLState;
  /// Shared-memory regions with overridden access cost (begin, end, cyc).
  std::vector<std::tuple<uint64_t, uint64_t, unsigned>> SharedCostRegions;
  std::string Trap;

  /// Profiling mode (Config.Profile, docs/pgo.md): live address ranges of
  /// anchored allocations, begin -> (end, anchor). Loads/stores/atomics
  /// landing inside a range count as touches of its anchor. Static
  /// anchored Shared-AS globals are registered once at layout and
  /// re-seeded each block (runBlock resets the shared-memory state).
  std::map<uint64_t, std::pair<uint64_t, std::string>> AnchoredRanges;
  std::map<uint64_t, std::pair<uint64_t, std::string>> StaticAnchoredRanges;

  /// Latency-hiding scale applied to memory and long-latency math costs
  /// (>= 1; grows when few warps are resident per SM).
  double LatencyScale = 1.0;
  /// Per-instruction extra cost (fractional cycles): register spills plus
  /// the legacy toolchain's code-generation overhead.
  double PerInstExtra = 0.0;
  /// The cycle-budget watchdog fired (Config.CycleBudget exceeded).
  bool WatchdogHit = false;
  /// Injected gpusim.hang fault pending: the first thread to run next
  /// stops making progress (docs/resilience.md).
  bool InjectHang = false;

  Simulation(GPUDevice &Dev, Module &M, const LaunchConfig &Config,
             const NativeRuntimeBinding &RTL, KernelStats &Stats)
      : Dev(Dev), M(M), Config(Config), RTL(RTL),
        Costs(Dev.getMachine().Costs), Stats(Stats) {
    layoutModule();
  }

  unsigned scaled(unsigned Cycles) const {
    return (unsigned)(Cycles * LatencyScale);
  }

  //===--------------------------------------------------------------------===//
  // Profiling-mode hooks (Config.Profile, docs/pgo.md)
  //===--------------------------------------------------------------------===//

  static bool anchorHasPrefix(const std::string &Anchor, const char *Prefix) {
    return Anchor.rfind(Prefix, 0) == 0;
  }

  /// Registers the live range [Begin, Begin+Bytes) of an anchored
  /// allocation. Stale overlapping ranges (freed memory reused by a later
  /// allocation whose free was not observed) are dropped first.
  void registerAnchoredRange(uint64_t Begin, uint64_t Bytes,
                             const std::string &Anchor) {
    if (!Bytes)
      return;
    uint64_t End = Begin + Bytes;
    auto It = AnchoredRanges.lower_bound(Begin);
    if (It != AnchoredRanges.begin()) {
      auto Prev = std::prev(It);
      if (Prev->second.first > Begin)
        It = Prev;
    }
    while (It != AnchoredRanges.end() && It->first < End)
      It = AnchoredRanges.erase(It);
    AnchoredRanges[Begin] = {End, Anchor};
  }

  /// Counts a memory access against the anchored allocation containing
  /// \p Addr, if any.
  void noteProfileTouch(uint64_t Addr) {
    if (AnchoredRanges.empty())
      return;
    auto It = AnchoredRanges.upper_bound(Addr);
    if (It == AnchoredRanges.begin())
      return;
    --It;
    if (Addr < It->second.first)
      Config.Profile->noteTouch(It->second.second);
  }

  void layoutModule() {
    for (GlobalVariable *G : M.globals()) {
      if (G->getAddressSpace() == AddrSpace::Shared) {
        uint64_t Align = std::max<uint64_t>(G->getValueType()->getAlignment(),
                                            1);
        StaticSharedBytes = (StaticSharedBytes + Align - 1) / Align * Align;
        SharedOffsets[G] = StaticSharedBytes;
        StaticSharedBytes += G->getAllocSizeInBytes();
        if (Config.Profile && G->hasAnchor()) {
          uint64_t Begin = makeSimAddr(Seg::Shared, SharedOffsets[G]);
          StaticAnchoredRanges[Begin] = {Begin + G->getAllocSizeInBytes(),
                                         G->getAnchor()};
        }
        continue;
      }
      uint64_t Addr = Dev.allocate(G->getAllocSizeInBytes());
      GlobalAddrs[G] = Addr;
      initializeGlobal(G, Addr);
    }
    for (const Function *F : M.functions()) {
      CodeAddrs[F] = makeSimAddr(Seg::Code, CodeTable.size());
      CodeTable.push_back(F);
    }
  }

  void initializeGlobal(const GlobalVariable *G, uint64_t Addr) {
    uint64_t Size = G->getAllocSizeInBytes();
    std::vector<uint8_t> Zero(Size, 0);
    Dev.memcpyToDevice(Addr, Zero.data(), Size);
    if (const Constant *Init = G->getInitializer()) {
      if (const auto *CI = dyn_cast<ConstantInt>(Init)) {
        int64_t V = CI->getValue();
        Dev.memcpyToDevice(Addr, &V, std::min<uint64_t>(Size, 8));
      } else if (const auto *CF = dyn_cast<ConstantFP>(Init)) {
        if (CF->getType()->getKind() == Type::Kind::Float) {
          float F = (float)CF->getValue();
          Dev.memcpyToDevice(Addr, &F, 4);
        } else {
          double D = CF->getValue();
          Dev.memcpyToDevice(Addr, &D, 8);
        }
      }
    }
  }

  const FunctionInfo &getFunctionInfo(const Function *F) {
    auto &SlotPtr = FnInfo[F];
    if (SlotPtr)
      return *SlotPtr;
    SlotPtr = std::make_unique<FunctionInfo>();
    FunctionInfo &FI = *SlotPtr;
    for (const Argument *A : F->args())
      FI.Slot[A] = FI.NumSlots++;
    for (const BasicBlock *BB : *F) {
      std::vector<const Instruction *> &Insts = FI.BlockInsts[BB];
      for (const Instruction *I : *BB) {
        Insts.push_back(I);
        if (!I->getType()->isVoidTy())
          FI.Slot[I] = FI.NumSlots++;
      }
    }

    // Static coalescing classification for global memory accesses.
    ThreadValueConfig Cfg;
    Cfg.ThreadIdFunctions = {"__kmpc_get_hardware_thread_id_in_block"};
    Cfg.UniformFunctions = {"__kmpc_get_hardware_num_threads_in_block",
                            "__kmpc_get_warp_size",
                            "omp_get_team_num",
                            "omp_get_num_teams",
                            "omp_get_num_threads",
                            "__kmpc_is_spmd_exec_mode",
                            "__kmpc_parallel_level",
                            "__kmpc_is_generic_main_thread"};
    Cfg.CallShapes["__kmpc_data_sharing_coalesced_push_stack"] =
        ThreadShape::linear(8);
    bool UniformArgs = F->isKernel() ||
                       F->getName().find("_wrapper") != std::string::npos ||
                       F->getName().rfind("__kmpc", 0) == 0;
    Cfg.ArgumentShape = UniformArgs ? ThreadShape::uniform()
                                    : ThreadShape::divergent();
    ThreadValueAnalysis TVA(*F, Cfg);

    auto Classify = [&](const Value *Ptr) {
      ThreadShape S = TVA.getShape(Ptr);
      if (S.isUniform())
        return GlobalAccessClass::Uniform;
      if (S.isLinear() && S.Stride != 0 && std::abs(S.Stride) <= 16)
        return GlobalAccessClass::Coalesced;
      return GlobalAccessClass::Uncoalesced;
    };
    for (const BasicBlock *BB : *F)
      for (const Instruction *I : *BB) {
        if (const auto *LI = dyn_cast<LoadInst>(I))
          FI.GlobalClass[I] = Classify(LI->getPointerOperand());
        else if (const auto *SI = dyn_cast<StoreInst>(I))
          FI.GlobalClass[I] = Classify(SI->getPointerOperand());
      }
    return FI;
  }

  //===--------------------------------------------------------------------===//
  // Block execution
  //===--------------------------------------------------------------------===//

  /// Runs one block to completion; returns its cycle count.
  uint64_t runBlock(Function *Kernel, unsigned TheBlockId,
                    const std::vector<uint64_t> &Args) {
    BlockId = TheBlockId;
    CacheTags.assign(Dev.getMachine().CacheLines, 0);
    SharedArena.assign(StaticSharedBytes +
                           Dev.getMachine().DataSharingSlabBytes,
                       0);
    SharedStackBrk = 0;
    BlockHeapCur = 0;
    SharedCostRegions.clear();
    RTLState = RTL.MakeBlockState ? RTL.MakeBlockState() : nullptr;
    if (Config.Profile)
      AnchoredRanges = StaticAnchoredRanges;

    Threads.clear();
    for (unsigned T = 0; T < Config.BlockDim; ++T) {
      auto TS = std::make_unique<ThreadSim>();
      TS->Sim = this;
      TS->Tid = T;
      pushFrame(*TS, Kernel, Args, nullptr);
      Threads.push_back(std::move(TS));
    }

    while (true) {
      bool RanAny = false;
      for (auto &T : Threads) {
        if (T->Status != ThreadStatus::Runnable)
          continue;
        RanAny = true;
        runThread(*T);
        if (!Trap.empty())
          break;
      }
      if (!Trap.empty())
        break;
      bool Released = releaseBarriers();
      bool AnyUnfinished = false;
      for (auto &T : Threads)
        if (T->Status == ThreadStatus::Runnable ||
            T->Status == ThreadStatus::AtBarrier)
          AnyUnfinished = true;
      if (!AnyUnfinished)
        break;
      if (!RanAny && !Released) {
        Trap = "barrier deadlock in block " + std::to_string(BlockId);
        break;
      }
    }

    BlockHeapPeak = std::max(BlockHeapPeak, BlockHeapCur);
    uint64_t MaxClock = 0;
    for (auto &T : Threads)
      MaxClock = std::max(MaxClock, T->Clock);
    return MaxClock;
  }

  bool releaseBarriers() {
    // Group waiters by barrier id.
    std::map<unsigned, std::vector<ThreadSim *>> Waiters;
    for (auto &T : Threads)
      if (T->Status == ThreadStatus::AtBarrier)
        Waiters[T->WaitBarrierId].push_back(T.get());
    bool Released = false;
    for (auto &[Id, Group] : Waiters) {
      unsigned Required = Group.front()->WaitBarrierCount;
      if (Group.size() < Required)
        continue;
      uint64_t MaxClock = 0;
      for (ThreadSim *T : Group)
        MaxClock = std::max(MaxClock, T->Clock);
      if (Config.Profile) {
        // Count one execution per anchored barrier callsite represented in
        // this release (once per block arrival, not per thread).
        std::set<std::string> Anchors;
        for (ThreadSim *T : Group) {
          const Frame &Fr = T->Stack.back();
          const Instruction *I = Fr.FI->BlockInsts.at(Fr.CurBB)[Fr.InstIdx];
          if (I->hasAnchor())
            Anchors.insert(I->getAnchor());
        }
        for (const std::string &A : Anchors)
          Config.Profile->noteBarrier(A);
      }
      for (ThreadSim *T : Group) {
        T->Clock = MaxClock + Costs.BarrierCycles;
        T->Status = ThreadStatus::Runnable;
        advancePastCall(*T);
      }
      ++Stats.Barriers;
      Released = true;
    }
    return Released;
  }

  /// After a blocking native call completes, step past the call.
  void advancePastCall(ThreadSim &T) {
    Frame &F = T.Stack.back();
    ++F.InstIdx;
  }

  void trapThread(ThreadSim &T, const std::string &Msg) {
    T.Status = ThreadStatus::Trapped;
    Trap = "thread " + std::to_string(T.Tid) + " of block " +
           std::to_string(BlockId) + ": " + Msg;
  }

  void pushFrame(ThreadSim &T, const Function *F,
                 const std::vector<uint64_t> &Args,
                 const CallInst *CallSite) {
    const FunctionInfo &FI = getFunctionInfo(F);
    Frame Fr;
    Fr.F = F;
    Fr.FI = &FI;
    Fr.Regs.assign(FI.NumSlots, 0);
    Fr.CurBB = F->getEntryBlock();
    Fr.PrevBB = nullptr;
    Fr.InstIdx = 0;
    Fr.CallSite = CallSite;
    Fr.LocalWatermark = T.LocalBrk;
    for (unsigned I = 0, E = F->arg_size(); I != E; ++I)
      Fr.Regs[FI.Slot.at(F->getArg(I))] = Args[I];
    T.Stack.push_back(std::move(Fr));
  }

  //===--------------------------------------------------------------------===//
  // Value evaluation
  //===--------------------------------------------------------------------===//

  uint64_t evalValue(ThreadSim &T, const Frame &Fr, const Value *V) {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return (uint64_t)CI->getValue();
    if (const auto *CF = dyn_cast<ConstantFP>(V)) {
      double D = CF->getValue();
      if (CF->getType()->getKind() == Type::Kind::Float)
        D = (float)D;
      return bitsOfDouble(D);
    }
    if (isa<ConstantPointerNull>(V) || isa<UndefValue>(V))
      return 0;
    if (const auto *F = dyn_cast<Function>(V))
      return CodeAddrs.at(F);
    if (const auto *G = dyn_cast<GlobalVariable>(V)) {
      if (auto It = SharedOffsets.find(G); It != SharedOffsets.end())
        return makeSimAddr(Seg::Shared, It->second);
      return GlobalAddrs.at(G);
    }
    auto It = Fr.FI->Slot.find(V);
    if (It != Fr.FI->Slot.end())
      return Fr.Regs[It->second];
    (void)T;
    ompgpu_unreachable("unhandled value kind in evaluation");
  }

  void writeResult(Frame &Fr, const Instruction *I, uint64_t V) {
    if (I->getType()->isVoidTy())
      return;
    if (I->getType()->isIntegerTy())
      V = (uint64_t)normalizeInt(I->getType(), (int64_t)V);
    Fr.Regs[Fr.FI->Slot.at(I)] = V;
  }

  //===--------------------------------------------------------------------===//
  // Memory
  //===--------------------------------------------------------------------===//

  bool accessMemory(ThreadSim &T, uint64_t Addr, void *Data, uint64_t Bytes,
                    bool IsWrite) {
    switch (getSimAddrSeg(Addr)) {
    case Seg::Global: {
      uint64_t Off = getSimAddrOffset(Addr);
      if (Off + Bytes > Dev.getGlobalBrk())
        return false;
      uint8_t *P = Dev.getGlobalArena().data() + Off;
      IsWrite ? std::memcpy(P, Data, Bytes) : std::memcpy(Data, P, Bytes);
      return true;
    }
    case Seg::Shared: {
      uint64_t Off = getSimAddrOffset(Addr);
      if (Off + Bytes > SharedArena.size())
        return false;
      uint8_t *P = SharedArena.data() + Off;
      IsWrite ? std::memcpy(P, Data, Bytes) : std::memcpy(Data, P, Bytes);
      return true;
    }
    case Seg::Local: {
      unsigned Owner = getLocalSimAddrOwner(Addr);
      if (Owner != T.Tid)
        return false; // cross-thread access to a stack variable (Fig. 3)
      uint64_t Off = getLocalSimAddrOffset(Addr);
      if (Off + Bytes > T.LocalArena.size())
        return false;
      uint8_t *P = T.LocalArena.data() + Off;
      IsWrite ? std::memcpy(P, Data, Bytes) : std::memcpy(Data, P, Bytes);
      return true;
    }
    default:
      return false;
    }
  }

  unsigned memoryCycles(const Frame &Fr, const Instruction *I,
                        uint64_t Addr) {
    switch (getSimAddrSeg(Addr)) {
    case Seg::Local:
      return Costs.LocalMemCycles;
    case Seg::Shared: {
      uint64_t Off = getSimAddrOffset(Addr);
      for (const auto &[Begin, End, Cyc] : SharedCostRegions)
        if (Off >= Begin && Off < End)
          return Cyc;
      return Costs.SharedMemCycles;
    }
    case Seg::Global: {
      // L2 cache model: repeated lines are cheap regardless of the
      // coalescing class (read-only tables, the SU(3) B matrix, hot
      // binary-search levels...).
      const MachineModel &MM = Dev.getMachine();
      uint64_t Line = getSimAddrOffset(Addr) / MM.CacheLineBytes + 1;
      uint64_t &Tag = CacheTags[Line % MM.CacheLines];
      if (Tag == Line)
        return Costs.GlobalCachedCycles;
      Tag = Line;
      auto It = Fr.FI->GlobalClass.find(I);
      GlobalAccessClass C = It == Fr.FI->GlobalClass.end()
                                ? GlobalAccessClass::Uncoalesced
                                : It->second;
      switch (C) {
      case GlobalAccessClass::Uniform:
        return Costs.GlobalUniformCycles;
      case GlobalAccessClass::Coalesced:
        return Costs.GlobalCoalescedCycles;
      case GlobalAccessClass::Uncoalesced:
        return Costs.GlobalUncoalescedCycles;
      }
      ompgpu_unreachable("covered switch");
    }
    default:
      return Costs.LocalMemCycles;
    }
  }

  /// Loads a typed value from memory into register representation.
  bool loadTyped(ThreadSim &T, uint64_t Addr, const Type *Ty,
                 uint64_t &Out) {
    switch (Ty->getKind()) {
    case Type::Kind::Int1:
    case Type::Kind::Int8: {
      int8_t V = 0;
      if (!accessMemory(T, Addr, &V, 1, false))
        return false;
      Out = (uint64_t)normalizeInt(Ty, V);
      return true;
    }
    case Type::Kind::Int32: {
      int32_t V = 0;
      if (!accessMemory(T, Addr, &V, 4, false))
        return false;
      Out = (uint64_t)(int64_t)V;
      return true;
    }
    case Type::Kind::Int64:
    case Type::Kind::Pointer: {
      uint64_t V = 0;
      if (!accessMemory(T, Addr, &V, 8, false))
        return false;
      Out = V;
      return true;
    }
    case Type::Kind::Float: {
      float V = 0;
      if (!accessMemory(T, Addr, &V, 4, false))
        return false;
      Out = bitsOfDouble((double)V);
      return true;
    }
    case Type::Kind::Double: {
      double V = 0;
      if (!accessMemory(T, Addr, &V, 8, false))
        return false;
      Out = bitsOfDouble(V);
      return true;
    }
    default:
      return false;
    }
  }

  bool storeTyped(ThreadSim &T, uint64_t Addr, const Type *Ty, uint64_t In) {
    switch (Ty->getKind()) {
    case Type::Kind::Int1:
    case Type::Kind::Int8: {
      int8_t V = (int8_t)In;
      return accessMemory(T, Addr, &V, 1, true);
    }
    case Type::Kind::Int32: {
      int32_t V = (int32_t)In;
      return accessMemory(T, Addr, &V, 4, true);
    }
    case Type::Kind::Int64:
    case Type::Kind::Pointer:
      return accessMemory(T, Addr, &In, 8, true);
    case Type::Kind::Float: {
      float V = (float)doubleOfBits(In);
      return accessMemory(T, Addr, &V, 4, true);
    }
    case Type::Kind::Double: {
      double V = doubleOfBits(In);
      return accessMemory(T, Addr, &V, 8, true);
    }
    default:
      return false;
    }
  }

  //===--------------------------------------------------------------------===//
  // Thread execution
  //===--------------------------------------------------------------------===//

  void runThread(ThreadSim &T) {
    while (T.Status == ThreadStatus::Runnable) {
      // Watchdog: convert hung or runaway execution into a recoverable
      // timeout trap (OMP220) instead of spinning forever. Checked before
      // each instruction so even an injected hang that only advances the
      // clock terminates deterministically.
      if (Config.CycleBudget && T.Clock > Config.CycleBudget) {
        WatchdogHit = true;
        trapThread(T, "watchdog: cycle budget " +
                          std::to_string(Config.CycleBudget) +
                          " exceeded at cycle " + std::to_string(T.Clock));
        return;
      }
      if (InjectHang) {
        InjectHang = false;
        if (Config.CycleBudget) {
          // Model a hung thread: the clock races past the budget without
          // retiring an instruction; the next loop iteration trips the
          // watchdog.
          T.Clock = Config.CycleBudget + 1;
          continue;
        }
        // No watchdog armed — never actually hang the process.
        trapThread(T, "injected hang (no watchdog cycle budget armed)");
        return;
      }
      Frame &Fr = T.Stack.back();
      if (Fr.InstIdx >= Fr.CurBB->size()) {
        trapThread(T, "fell off the end of block '" + Fr.CurBB->getName() +
                          "'");
        return;
      }
      const std::vector<const Instruction *> &Insts =
          Fr.FI->BlockInsts.at(Fr.CurBB);
      executeInstruction(T, Insts[Fr.InstIdx]);
    }
  }

  void branchTo(ThreadSim &T, Frame &Fr, const BasicBlock *Dest) {
    Fr.PrevBB = Fr.CurBB;
    Fr.CurBB = Dest;
    Fr.InstIdx = 0;
    // Execute all phis as a parallel assignment.
    std::vector<std::pair<const PhiInst *, uint64_t>> PhiVals;
    for (const Instruction *I : *Dest) {
      const auto *Phi = dyn_cast<PhiInst>(I);
      if (!Phi)
        break;
      const Value *In = Phi->getIncomingValueForBlock(Fr.PrevBB);
      if (!In) {
        trapThread(T, "phi has no incoming value for predecessor");
        return;
      }
      PhiVals.push_back({Phi, evalValue(T, Fr, In)});
      ++Fr.InstIdx;
    }
    for (auto &[Phi, V] : PhiVals)
      writeResult(Fr, Phi, V);
  }

  void returnFromFrame(ThreadSim &T, uint64_t RetVal, bool HasRet) {
    Frame Done = std::move(T.Stack.back());
    T.Stack.pop_back();
    T.LocalBrk = Done.LocalWatermark;
    if (T.Stack.empty()) {
      T.Status = ThreadStatus::Finished;
      return;
    }
    Frame &Caller = T.Stack.back();
    if (HasRet && Done.CallSite)
      writeResult(Caller, Done.CallSite, RetVal);
    ++Caller.InstIdx;
  }

  void executeInstruction(ThreadSim &T, const Instruction *I) {
    Frame &Fr = T.Stack.back();
    ++Stats.DynamicInstructions;
    // Profiling: a "parallel:" anchor marks a __kmpc_parallel_51 dispatch.
    // It starts on the callsite and, when the inliner flattens the call,
    // moves to the branch into the inlined body — either way the anchored
    // instruction executes exactly once per dispatch.
    if (Config.Profile && I->hasAnchor() &&
        anchorHasPrefix(I->getAnchor(), "parallel:"))
      Config.Profile->noteDispatch(I->getAnchor());
    if (PerInstExtra > 0) {
      T.SpillDebt += PerInstExtra;
      if (T.SpillDebt >= 1.0) {
        uint64_t Whole = (uint64_t)T.SpillDebt;
        T.Clock += Whole;
        T.SpillDebt -= (double)Whole;
      }
    }

    switch (I->getOpcode()) {
    case ValueKind::Alloca: {
      const auto *AI = cast<AllocaInst>(I);
      uint64_t Size = std::max<uint64_t>(1, AI->getAllocSizeInBytes());
      T.LocalBrk = (T.LocalBrk + 7) & ~7ull;
      uint64_t Off = T.LocalBrk;
      T.LocalBrk += Size;
      if (T.LocalBrk > T.LocalArena.size())
        T.LocalArena.resize(std::max<uint64_t>(T.LocalBrk,
                                               T.LocalArena.size() * 2 + 64),
                            0);
      writeResult(Fr, I, makeLocalSimAddr(T.Tid, Off));
      T.Clock += Costs.AllocaCycles;
      ++Fr.InstIdx;
      return;
    }
    case ValueKind::Load: {
      const auto *LI = cast<LoadInst>(I);
      uint64_t Addr = evalValue(T, Fr, LI->getPointerOperand());
      uint64_t V = 0;
      if (!loadTyped(T, Addr, LI->getType(), V)) {
        trapThread(T, "invalid load from address " + toString(Addr) +
                          (getSimAddrSeg(Addr) == Seg::Local
                               ? " (cross-thread stack access?)"
                               : ""));
        return;
      }
      if (Config.Profile)
        noteProfileTouch(Addr);
      writeResult(Fr, I, V);
      T.Clock += scaled(memoryCycles(Fr, I, Addr));
      ++Fr.InstIdx;
      return;
    }
    case ValueKind::Store: {
      const auto *SI = cast<StoreInst>(I);
      uint64_t Addr = evalValue(T, Fr, SI->getPointerOperand());
      uint64_t V = evalValue(T, Fr, SI->getValueOperand());
      if (!storeTyped(T, Addr, SI->getAccessType(), V)) {
        trapThread(T, "invalid store to address " + toString(Addr) +
                          (getSimAddrSeg(Addr) == Seg::Local
                               ? " (cross-thread stack access?)"
                               : ""));
        return;
      }
      if (Config.Profile)
        noteProfileTouch(Addr);
      T.Clock += scaled(memoryCycles(Fr, I, Addr));
      ++Fr.InstIdx;
      return;
    }
    case ValueKind::GEP: {
      const auto *GEP = cast<GEPInst>(I);
      uint64_t Addr = evalValue(T, Fr, GEP->getPointerOperand());
      int64_t Offset = 0;
      const Type *CurTy = GEP->getSourceElementType();
      for (unsigned Idx = 0, E = GEP->getNumIndices(); Idx != E; ++Idx) {
        int64_t IdxV = (int64_t)evalValue(T, Fr, GEP->getIndex(Idx));
        if (Idx == 0) {
          Offset += IdxV * (int64_t)CurTy->getSizeInBytes();
        } else if (const auto *AT = dyn_cast<ArrayType>(CurTy)) {
          CurTy = AT->getElementType();
          Offset += IdxV * (int64_t)CurTy->getSizeInBytes();
        } else if (const auto *ST = dyn_cast<StructType>(CurTy)) {
          Offset += (int64_t)ST->getElementOffset((unsigned)IdxV);
          CurTy = ST->getElementType((unsigned)IdxV);
        } else {
          trapThread(T, "malformed GEP index structure");
          return;
        }
      }
      writeResult(Fr, I, Addr + (uint64_t)Offset);
      T.Clock += Costs.AluCycles;
      ++Fr.InstIdx;
      return;
    }
    case ValueKind::AtomicRMW: {
      const auto *AI = cast<AtomicRMWInst>(I);
      uint64_t Addr = evalValue(T, Fr, AI->getPointerOperand());
      uint64_t Operand = evalValue(T, Fr, AI->getValOperand());
      const Type *Ty = AI->getAccessType();
      uint64_t Old = 0;
      if (!loadTyped(T, Addr, Ty, Old)) {
        trapThread(T, "invalid atomic access");
        return;
      }
      uint64_t New = Old;
      switch (AI->getOperation()) {
      case AtomicRMWOp::Xchg:
        New = Operand;
        break;
      case AtomicRMWOp::Add:
        New = Old + Operand;
        break;
      case AtomicRMWOp::FAdd:
        New = bitsOfDouble(doubleOfBits(Old) + doubleOfBits(Operand));
        break;
      case AtomicRMWOp::Max:
        New = (int64_t)Old > (int64_t)Operand ? Old : Operand;
        break;
      case AtomicRMWOp::Min:
        New = (int64_t)Old < (int64_t)Operand ? Old : Operand;
        break;
      }
      if (!storeTyped(T, Addr, Ty, New)) {
        trapThread(T, "invalid atomic access");
        return;
      }
      if (Config.Profile)
        noteProfileTouch(Addr);
      writeResult(Fr, I, Old);
      T.Clock += scaled(Costs.AtomicCycles);
      ++Fr.InstIdx;
      return;
    }
    case ValueKind::BinOp:
      executeBinOp(T, Fr, cast<BinOpInst>(I));
      return;
    case ValueKind::ICmp: {
      const auto *C = cast<ICmpInst>(I);
      int64_t L = (int64_t)evalValue(T, Fr, C->getLHS());
      int64_t R = (int64_t)evalValue(T, Fr, C->getRHS());
      uint64_t UL = (uint64_t)L, UR = (uint64_t)R;
      bool Res = false;
      switch (C->getPredicate()) {
      case ICmpPred::EQ:
        Res = L == R;
        break;
      case ICmpPred::NE:
        Res = L != R;
        break;
      case ICmpPred::SLT:
        Res = L < R;
        break;
      case ICmpPred::SLE:
        Res = L <= R;
        break;
      case ICmpPred::SGT:
        Res = L > R;
        break;
      case ICmpPred::SGE:
        Res = L >= R;
        break;
      case ICmpPred::ULT:
        Res = UL < UR;
        break;
      case ICmpPred::ULE:
        Res = UL <= UR;
        break;
      case ICmpPred::UGT:
        Res = UL > UR;
        break;
      case ICmpPred::UGE:
        Res = UL >= UR;
        break;
      }
      writeResult(Fr, I, Res);
      T.Clock += Costs.AluCycles;
      ++Fr.InstIdx;
      return;
    }
    case ValueKind::FCmp: {
      const auto *C = cast<FCmpInst>(I);
      double L = doubleOfBits(evalValue(T, Fr, C->getLHS()));
      double R = doubleOfBits(evalValue(T, Fr, C->getRHS()));
      bool Res = false;
      switch (C->getPredicate()) {
      case FCmpPred::OEQ:
        Res = L == R;
        break;
      case FCmpPred::ONE:
        Res = L != R;
        break;
      case FCmpPred::OLT:
        Res = L < R;
        break;
      case FCmpPred::OLE:
        Res = L <= R;
        break;
      case FCmpPred::OGT:
        Res = L > R;
        break;
      case FCmpPred::OGE:
        Res = L >= R;
        break;
      }
      writeResult(Fr, I, Res);
      T.Clock += Costs.AluCycles;
      ++Fr.InstIdx;
      return;
    }
    case ValueKind::Cast:
      executeCast(T, Fr, cast<CastInst>(I));
      return;
    case ValueKind::Select: {
      const auto *S = cast<SelectInst>(I);
      uint64_t C = evalValue(T, Fr, S->getCondition());
      writeResult(Fr, I, (C & 1) ? evalValue(T, Fr, S->getTrueValue())
                                 : evalValue(T, Fr, S->getFalseValue()));
      T.Clock += Costs.SelectCycles;
      ++Fr.InstIdx;
      return;
    }
    case ValueKind::Math:
      executeMath(T, Fr, cast<MathInst>(I));
      return;
    case ValueKind::Phi:
      // Phis are executed by branchTo; reaching one directly means the
      // entry block starts with a phi, which the verifier rejects.
      trapThread(T, "phi executed outside of a branch");
      return;
    case ValueKind::Call:
      executeCall(T, Fr, cast<CallInst>(I));
      return;
    case ValueKind::Ret: {
      const auto *R = cast<RetInst>(I);
      uint64_t V = 0;
      bool HasVal = false;
      if (const Value *RV = R->getReturnValue()) {
        V = evalValue(T, Fr, RV);
        HasVal = true;
      }
      T.Clock += Costs.RetCycles;
      returnFromFrame(T, V, HasVal);
      return;
    }
    case ValueKind::Br: {
      const auto *B = cast<BrInst>(I);
      T.Clock += Costs.BranchCycles;
      if (!B->isConditional()) {
        branchTo(T, Fr, B->getSuccessor(0));
        return;
      }
      uint64_t C = evalValue(T, Fr, B->getCondition());
      // Profiling: a "guard:" anchor marks an SPMDzation guard branch;
      // count each thread that takes the guarded (true) successor.
      if (Config.Profile && (C & 1) && B->hasAnchor() &&
          anchorHasPrefix(B->getAnchor(), "guard:"))
        Config.Profile->noteGuardEntry(B->getAnchor());
      branchTo(T, Fr, B->getSuccessor((C & 1) ? 0 : 1));
      return;
    }
    case ValueKind::Unreachable:
      trapThread(T, "unreachable executed");
      return;
    default:
      trapThread(T, std::string("unhandled instruction '") +
                        I->getOpcodeName() + "'");
      return;
    }
  }

  void executeBinOp(ThreadSim &T, Frame &Fr, const BinOpInst *BO) {
    uint64_t LB = evalValue(T, Fr, BO->getLHS());
    uint64_t RB = evalValue(T, Fr, BO->getRHS());
    const Type *Ty = BO->getType();
    unsigned Cycles = Ty->getSizeInBytes() > 4 ? Costs.Alu64Cycles
                                               : Costs.AluCycles;
    if (BO->isFloatOp()) {
      double L = doubleOfBits(LB), R = doubleOfBits(RB);
      double Res = 0;
      switch (BO->getBinaryOp()) {
      case BinaryOp::FAdd:
        Res = L + R;
        break;
      case BinaryOp::FSub:
        Res = L - R;
        break;
      case BinaryOp::FMul:
        Res = L * R;
        break;
      case BinaryOp::FDiv:
        Res = L / R;
        Cycles = Costs.MathCycles;
        break;
      default:
        ompgpu_unreachable("not a float op");
      }
      if (Ty->getKind() == Type::Kind::Float)
        Res = (float)Res;
      writeResult(Fr, BO, bitsOfDouble(Res));
      T.Clock += Cycles;
      ++Fr.InstIdx;
      return;
    }

    int64_t L = (int64_t)LB, R = (int64_t)RB;
    unsigned Width = Ty->getIntegerBitWidth();
    uint64_t Mask = Width >= 64 ? ~0ull : ((1ull << Width) - 1);
    int64_t Res = 0;
    switch (BO->getBinaryOp()) {
    case BinaryOp::Add:
      Res = (int64_t)((uint64_t)L + (uint64_t)R);
      break;
    case BinaryOp::Sub:
      Res = (int64_t)((uint64_t)L - (uint64_t)R);
      break;
    case BinaryOp::Mul:
      Res = (int64_t)((uint64_t)L * (uint64_t)R);
      break;
    case BinaryOp::SDiv:
      if (R == 0) {
        trapThread(T, "integer division by zero");
        return;
      }
      Res = L / R;
      Cycles = Costs.MathCycles;
      break;
    case BinaryOp::UDiv:
      if (R == 0) {
        trapThread(T, "integer division by zero");
        return;
      }
      Res = (int64_t)(((uint64_t)L & Mask) / ((uint64_t)R & Mask));
      Cycles = Costs.MathCycles;
      break;
    case BinaryOp::SRem:
      if (R == 0) {
        trapThread(T, "integer remainder by zero");
        return;
      }
      Res = L % R;
      Cycles = Costs.MathCycles;
      break;
    case BinaryOp::URem:
      if (R == 0) {
        trapThread(T, "integer remainder by zero");
        return;
      }
      Res = (int64_t)(((uint64_t)L & Mask) % ((uint64_t)R & Mask));
      Cycles = Costs.MathCycles;
      break;
    case BinaryOp::And:
      Res = L & R;
      break;
    case BinaryOp::Or:
      Res = L | R;
      break;
    case BinaryOp::Xor:
      Res = L ^ R;
      break;
    case BinaryOp::Shl:
      Res = (int64_t)((uint64_t)L << (R & (Width - 1)));
      break;
    case BinaryOp::LShr:
      Res = (int64_t)(((uint64_t)L & Mask) >> (R & (Width - 1)));
      break;
    case BinaryOp::AShr:
      Res = L >> (R & (Width - 1));
      break;
    default:
      ompgpu_unreachable("not an integer op");
    }
    writeResult(Fr, BO, (uint64_t)Res);
    T.Clock += Cycles;
    ++Fr.InstIdx;
  }

  void executeCast(ThreadSim &T, Frame &Fr, const CastInst *C) {
    uint64_t In = evalValue(T, Fr, C->getSrc());
    const Type *SrcTy = C->getSrc()->getType();
    const Type *DstTy = C->getType();
    uint64_t Out = 0;
    switch (C->getCastOp()) {
    case CastOp::Trunc:
    case CastOp::SExt:
      Out = (uint64_t)normalizeInt(DstTy, (int64_t)In);
      break;
    case CastOp::ZExt: {
      unsigned SrcBits = SrcTy->getIntegerBitWidth();
      uint64_t Mask = SrcBits >= 64 ? ~0ull : ((1ull << SrcBits) - 1);
      Out = In & Mask;
      break;
    }
    case CastOp::FPToSI:
      Out = (uint64_t)normalizeInt(DstTy, (int64_t)doubleOfBits(In));
      break;
    case CastOp::SIToFP: {
      double D = (double)(int64_t)In;
      if (DstTy->getKind() == Type::Kind::Float)
        D = (float)D;
      Out = bitsOfDouble(D);
      break;
    }
    case CastOp::UIToFP: {
      unsigned SrcBits = SrcTy->getIntegerBitWidth();
      uint64_t Mask = SrcBits >= 64 ? ~0ull : ((1ull << SrcBits) - 1);
      double D = (double)(In & Mask);
      if (DstTy->getKind() == Type::Kind::Float)
        D = (float)D;
      Out = bitsOfDouble(D);
      break;
    }
    case CastOp::FPTrunc:
      Out = bitsOfDouble((double)(float)doubleOfBits(In));
      break;
    case CastOp::FPExt:
      Out = In;
      break;
    case CastOp::PtrToInt:
    case CastOp::IntToPtr:
    case CastOp::AddrSpaceCast:
      Out = In;
      break;
    }
    writeResult(Fr, C, Out);
    T.Clock += Costs.AluCycles;
    ++Fr.InstIdx;
  }

  void executeMath(ThreadSim &T, Frame &Fr, const MathInst *M) {
    double A = doubleOfBits(evalValue(T, Fr, M->getOperand(0)));
    double B = M->getNumOperands() > 1
                   ? doubleOfBits(evalValue(T, Fr, M->getOperand(1)))
                   : 0.0;
    double Res = 0;
    switch (M->getMathOp()) {
    case MathOp::Sqrt:
      Res = std::sqrt(A);
      break;
    case MathOp::Sin:
      Res = std::sin(A);
      break;
    case MathOp::Cos:
      Res = std::cos(A);
      break;
    case MathOp::Exp:
      Res = std::exp(A);
      break;
    case MathOp::Log:
      Res = std::log(A);
      break;
    case MathOp::Fabs:
      Res = std::fabs(A);
      break;
    case MathOp::Floor:
      Res = std::floor(A);
      break;
    case MathOp::Pow:
      Res = std::pow(A, B);
      break;
    case MathOp::FMin:
      Res = std::fmin(A, B);
      break;
    case MathOp::FMax:
      Res = std::fmax(A, B);
      break;
    }
    if (M->getType()->getKind() == Type::Kind::Float)
      Res = (float)Res;
    writeResult(Fr, M, bitsOfDouble(Res));
    T.Clock += Costs.MathCycles;
    ++Fr.InstIdx;
  }

  void executeCall(ThreadSim &T, Frame &Fr, const CallInst *CI) {
    std::vector<uint64_t> Args;
    Args.reserve(CI->arg_size());
    for (unsigned A = 0, E = CI->arg_size(); A != E; ++A)
      Args.push_back(evalValue(T, Fr, CI->getArgOperand(A)));

    const Function *Callee = CI->getCalledFunction();
    if (!Callee) {
      // Indirect call through a code address.
      uint64_t Target = evalValue(T, Fr, CI->getCalledOperand());
      if (getSimAddrSeg(Target) != Seg::Code ||
          getSimAddrOffset(Target) >= CodeTable.size()) {
        trapThread(T, "indirect call to a non-function address");
        return;
      }
      Callee = CodeTable[getSimAddrOffset(Target)];
      ++Stats.IndirectCalls;
      T.Clock += Costs.IndirectCallCycles;
    }

    if (!Callee->isDeclaration()) {
      if (CI->getCalledFunction())
        T.Clock += Costs.CallCycles;
      pushFrame(T, Callee, Args, CI);
      return;
    }

    // Native runtime call.
    auto It = RTL.Handlers.find(Callee->getName());
    if (It == RTL.Handlers.end()) {
      trapThread(T, "call to unknown external function '" +
                        Callee->getName() + "'");
      return;
    }
    ++Stats.RuntimeCalls;
    NativeResult R = It->second(T, Args);
    T.Clock += R.ExtraCycles;
    if (Config.Profile && R.K == NativeResult::Kind::Value) {
      // Track the live ranges of anchored globalization allocations so
      // that loads/stores into them count as touches of their anchor.
      if (CI->hasAnchor() && anchorHasPrefix(CI->getAnchor(), "alloc:") &&
          !Args.empty() && R.Ret != 0)
        registerAnchoredRange(R.Ret, Args[0], CI->getAnchor());
      else if ((Callee->getName() == "__kmpc_free_shared" ||
                Callee->getName() == "__kmpc_data_sharing_pop_stack") &&
               !Args.empty())
        AnchoredRanges.erase(Args[0]);
    }
    switch (R.K) {
    case NativeResult::Kind::Value:
      writeResult(Fr, CI, R.Ret);
      ++Fr.InstIdx;
      return;
    case NativeResult::Kind::Block:
      T.Status = ThreadStatus::AtBarrier;
      T.WaitBarrierId = R.BarrierId;
      T.WaitBarrierCount = R.BarrierCount;
      return; // InstIdx advanced on release
    case NativeResult::Kind::Trap:
      trapThread(T, R.Msg);
      return;
    }
  }
};

// ThreadSim virtuals (need Simulation definition).
unsigned ThreadSim::getBlockDim() const { return Sim->Config.BlockDim; }
unsigned ThreadSim::getBlockId() const { return Sim->BlockId; }
unsigned ThreadSim::getGridDim() const { return Sim->Config.GridDim; }
unsigned ThreadSim::getWarpSize() const {
  return Sim->Dev.getMachine().WarpSize;
}
uint64_t ThreadSim::getDataSharingSlabBytes() const {
  return Sim->Dev.getMachine().DataSharingSlabBytes;
}
RTLBlockStateBase &ThreadSim::getRTLState() { return *Sim->RTLState; }
bool ThreadSim::readMemory(uint64_t Addr, void *Dst, uint64_t Bytes) {
  return Sim->accessMemory(*this, Addr, Dst, Bytes, /*IsWrite=*/false);
}
bool ThreadSim::writeMemory(uint64_t Addr, const void *Src,
                            uint64_t Bytes) {
  return Sim->accessMemory(*this, Addr, const_cast<void *>(Src), Bytes,
                           /*IsWrite=*/true);
}
uint64_t ThreadSim::sharedStackAlloc(uint64_t Bytes) {
  uint64_t Aligned = (Sim->SharedStackBrk + 7) & ~7ull;
  if (Sim->StaticSharedBytes + Aligned + Bytes > Sim->SharedArena.size())
    return 0;
  Sim->SharedStackBrk = Aligned + Bytes;
  Sim->SharedStackPeak = std::max(Sim->SharedStackPeak, Sim->SharedStackBrk);
  return makeSimAddr(Seg::Shared, Sim->StaticSharedBytes + Aligned);
}
void ThreadSim::sharedStackFree(uint64_t Bytes) {
  Sim->SharedStackBrk -= std::min(Sim->SharedStackBrk, Bytes);
}
uint64_t ThreadSim::heapAlloc(uint64_t Bytes) {
  Sim->BlockHeapCur += Bytes;
  Sim->BlockHeapPeak = std::max(Sim->BlockHeapPeak, Sim->BlockHeapCur);
  Sim->Stats.HeapFallbackBytes += Bytes;
  return Sim->Dev.heapAllocate(Bytes);
}
void ThreadSim::heapFree(uint64_t Bytes) {
  Sim->BlockHeapCur -= std::min(Sim->BlockHeapCur, Bytes);
}
void ThreadSim::setSharedRegionCost(uint64_t Addr, uint64_t Bytes,
                                    unsigned CyclesPerAccess) {
  if (getSimAddrSeg(Addr) != Seg::Shared)
    return;
  uint64_t Off = getSimAddrOffset(Addr);
  Sim->SharedCostRegions.push_back({Off, Off + Bytes, CyclesPerAccess});
}
void ThreadSim::clearSharedRegionCost(uint64_t Addr) {
  if (getSimAddrSeg(Addr) != Seg::Shared)
    return;
  uint64_t Off = getSimAddrOffset(Addr);
  erase_if(Sim->SharedCostRegions,
           [Off](const std::tuple<uint64_t, uint64_t, unsigned> &R) {
             return std::get<0>(R) == Off;
           });
}

} // namespace

//===----------------------------------------------------------------------===//
// Kernel launch
//===----------------------------------------------------------------------===//

KernelStats GPUDevice::launchKernel(Module &M, Function *Kernel,
                                    const LaunchConfig &Config,
                                    const std::vector<uint64_t> &Args,
                                    const NativeRuntimeBinding &RTL) {
  KernelStats Stats;
  Stats.KernelName = Kernel->getName();
  assert(Args.size() == Kernel->arg_size() && "kernel argument mismatch");

  Simulation Sim(*this, M, Config, RTL, Stats);
  Stats.CycleBudget = Config.CycleBudget;

  // Chaos sites (docs/resilience.md): a simulated kernel hang and a
  // runaway cycle count. Both are recoverable — the hang is converted
  // into a watchdog timeout (or an immediate trap when no budget is
  // armed), the runaway either trips the watchdog or merely inflates the
  // cycle estimate.
  FaultInjector &Chaos = FaultInjector::instance();
  if (Chaos.shouldFire(faultsite::GpusimHang))
    Sim.InjectHang = true;
  if (Chaos.shouldFire(faultsite::GpusimRunaway))
    Sim.PerInstExtra += 1e9;

  // Resource estimation under the build's register budget; demand beyond
  // the budget spills to local memory.
  unsigned Budget = Config.Flavor == RuntimeFlavor::Legacy
                        ? Machine.Costs.LegacyRegisterBudget
                        : Machine.Costs.RegisterBudget;
  KernelResources Res = estimateKernelResources(M, Kernel, Machine, Budget);
  Stats.RegsPerThread = Res.RegsPerThread;
  Stats.StaticSharedBytes = Res.StaticSharedBytes;
  if (Res.RawRegDemand > Res.RegsPerThread) {
    double SpillRatio =
        (double)(Res.RawRegDemand - Res.RegsPerThread) / Res.RawRegDemand;
    Sim.PerInstExtra += SpillRatio * Machine.Costs.SpillCostCycles;
  }
  if (Config.Flavor == RuntimeFlavor::Legacy)
    Sim.PerInstExtra += Machine.Costs.LegacyPerInstOverheadCycles;

  // Occupancy: the data-sharing slab is resident only if the module can
  // call into the globalization runtime.
  uint64_t SlabBytes = 0;
  for (const Function *F : M.functions())
    if (F->hasUses() && (F->getName() == "__kmpc_alloc_shared" ||
                         F->getName() ==
                             "__kmpc_data_sharing_coalesced_push_stack"))
      SlabBytes = Machine.DataSharingSlabBytes;
  unsigned BlocksPerSM = computeBlocksPerSM(Machine, Res, Config.BlockDim,
                                            SlabBytes);
  Stats.BlocksPerSM = BlocksPerSM;

  // Latency hiding: too few resident warps per SM inflate memory costs.
  // Warps-by-registers is computed smoothly (not block-quantized) so that
  // small register count changes do not cause cliff effects.
  double WarpsByThreads = (double)Machine.MaxThreadsPerSM / Machine.WarpSize;
  double WarpsByRegs =
      (double)Machine.RegistersPerSM /
      ((double)std::max(1u, std::min(Res.RegsPerThread,
                                     Machine.Costs.OccupancyRegCap)) *
       Machine.WarpSize);
  double ResidentWarps = std::min(WarpsByThreads, WarpsByRegs);
  if (ResidentWarps < (double)Machine.Costs.LatencyHidingTargetWarps)
    Sim.LatencyScale = Machine.Costs.LatencyHidingTargetWarps /
                       std::max(1.0, ResidentWarps);
  if (Config.Flavor == RuntimeFlavor::Legacy)
    Sim.LatencyScale *= Machine.Costs.LegacyLatencyFactor;

  // Select the blocks to simulate.
  unsigned Grid = Config.GridDim;
  unsigned NumSim = Config.MaxSimulatedBlocks == 0
                        ? Grid
                        : std::min(Grid, Config.MaxSimulatedBlocks);
  std::vector<unsigned> BlockIds;
  for (unsigned I = 0; I < NumSim; ++I)
    BlockIds.push_back((unsigned)((uint64_t)I * Grid / NumSim));

  uint64_t TotalCycles = 0;
  uint64_t MaxHeapPeak = 0;
  for (unsigned B : BlockIds) {
    TotalCycles += Sim.runBlock(Kernel, B, Args);
    MaxHeapPeak = std::max(MaxHeapPeak, Sim.BlockHeapPeak);
    if (!Sim.Trap.empty()) {
      Stats.Trap = Sim.Trap;
      break;
    }
  }
  Stats.SimulatedBlocks = NumSim;
  Stats.WatchdogTimeout = Sim.WatchdogHit;
  Stats.DynamicSharedBytes = Sim.SharedStackPeak;
  if (Config.Profile)
    Config.Profile->noteKernel(Stats.KernelName, Sim.SharedStackPeak);

  Stats.ConcurrentBlocks = std::min<uint64_t>(
      (uint64_t)BlocksPerSM * Machine.NumSMs, std::max(1u, Grid));
  Stats.Waves =
      (Grid + Stats.ConcurrentBlocks - 1) / std::max(1u,
                                                     Stats.ConcurrentBlocks);

  double MeanBlockCycles = NumSim ? (double)TotalCycles / NumSim : 0.0;
  Stats.Cycles = (uint64_t)(MeanBlockCycles * Stats.Waves);

  // Modeled host<->device traffic (docs/data-mapping.md): each mapped
  // buffer pays the link latency plus its bandwidth term once per copied
  // direction. Cycles and Milliseconds stay kernel-execution-only (the
  // Fig. 11 metric); the transfers surface via totalCycles().
  for (const MappedBuffer &B : Config.Mappings) {
    Stats.ConservativeTransferBytes += 2 * B.Bytes;
    if (mapCopiesToDevice(B.Kind)) {
      Stats.BytesToDevice += B.Bytes;
      Stats.TransferCycles += hostTransferCycles(Machine, B.Bytes);
    }
    if (mapCopiesFromDevice(B.Kind)) {
      Stats.BytesFromDevice += B.Bytes;
      Stats.TransferCycles += hostTransferCycles(Machine, B.Bytes);
    }
  }
  Stats.Milliseconds = Stats.Cycles / (Machine.ClockGHz * 1e6);

  // Out-of-memory model: globalization heap demand of all concurrently
  // resident blocks vs. the device heap.
  if (MaxHeapPeak * Stats.ConcurrentBlocks > Machine.DeviceHeapBytes)
    Stats.OutOfMemory = true;

  return Stats;
}
