//===- gpusim/DeviceGroup.h - Multi-device simulation group -----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-device scale-out for gpusim (docs/multi-device.md): a DeviceGroup
/// owns N GPUDevice instances — homogeneous (one ArchSpec replicated) or
/// heterogeneous (a JSON group spec naming per-device architectures from
/// the registry) — with per-device in-order launch queues and a
/// deterministic bulk-synchronous completion model. Device<->host traffic
/// reuses the MachineModel host-link math; device<->device traffic defaults
/// to the host-staged double hop and upgrades to a direct peer link when
/// the group spec declares one, so a peer-link spec is an observable win.
/// DeviceGroupStats tracks per-device busy cycles, link bytes/cycles, the
/// critical-path makespan vs. the sum of device cycles, and the
/// load-imbalance ratio the OMP252 remark warns about.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_GPUSIM_DEVICEGROUP_H
#define OMPGPU_GPUSIM_DEVICEGROUP_H

#include "gpusim/ArchSpec.h"
#include "gpusim/Device.h"

#include <memory>
#include <string>
#include <vector>

namespace ompgpu {

/// Version of the device-group JSON schema (docs/multi-device.md). Bump on
/// any field rename/removal; the strict parser rejects newer versions.
inline constexpr unsigned DeviceGroupSchemaVersion = 1;

/// Upper bound on the devices a group may declare. Far above any real
/// node (DGX-2 tops out at 16); a -devices value beyond it is a usage
/// error, not a simulation request.
inline constexpr unsigned MaxGroupDevices = 64;

/// One simulated multi-GPU node: the per-device architectures plus the
/// optional direct device<->device link.
struct DeviceGroupSpec {
  /// Stable identifier, stamped into reports and bench artifacts.
  std::string Name = "v100x1";
  /// Per-device architectures, in device-index order.
  std::vector<ArchSpec> Devices;
  /// Direct peer link (NVLink-style). When absent, device<->device
  /// exchanges are staged through the host: one host-link hop out of the
  /// source plus one into the destination.
  bool HasPeerLink = false;
  /// Peer-link bandwidth in bytes per source-device cycle (> 0 when
  /// HasPeerLink).
  double PeerBytesPerCycle = 0.0;
  /// Fixed per-peer-transfer setup cost in cycles (> 0 when HasPeerLink).
  unsigned PeerLatencyCycles = 0;

  unsigned size() const { return (unsigned)Devices.size(); }

  /// True when every device shares one architecture fingerprint (one
  /// compiled module serves the whole group).
  bool isHomogeneous() const;

  /// Checks internal consistency: non-empty name, 1..MaxGroupDevices
  /// devices each passing ArchSpec::validate(), and positive peer-link
  /// parameters when a peer link is declared. Returns the first violation
  /// as a typed Error naming the offending field.
  Error validate() const;
};

/// Builds the homogeneous group "<arch>xN": \p N devices of \p Arch, no
/// peer link (the -devices=N path of the bench drivers).
DeviceGroupSpec homogeneousGroupSpec(const ArchSpec &Arch, unsigned N);

/// Serializes \p Spec into the schema-versioned JSON document. Devices are
/// embedded as full ArchSpec documents so a written group spec is
/// self-contained; parse accepts registry names, spec paths, or embedded
/// objects. Deterministic member order.
json::Value deviceGroupSpecToJSON(const DeviceGroupSpec &Spec);

/// Strictly parses a device-group document: every member known by name,
/// `devices` a non-empty array of registry names / *.json paths / embedded
/// ArchSpec objects, the optional `peer_link` object complete and
/// positive. The result passes validate().
Expected<DeviceGroupSpec> parseDeviceGroupSpec(const json::Value &Doc);

/// parseDeviceGroupSpec over raw JSON text.
Expected<DeviceGroupSpec> parseDeviceGroupSpecText(const std::string &Text);

/// Reads and parses the group-spec file at \p Path (-group-spec= flag).
Expected<DeviceGroupSpec> resolveDeviceGroupSpec(const std::string &Path);

/// Execution statistics of one DeviceGroup lifetime (docs/multi-device.md).
/// All cycle counts are simulated device cycles.
struct DeviceGroupStats {
  struct PerDevice {
    std::string Arch;            ///< architecture name of this device
    uint64_t Launches = 0;       ///< kernels enqueued on this device
    uint64_t KernelCycles = 0;   ///< pure kernel execution cycles
    uint64_t CommCycles = 0;     ///< per-launch mapped-transfer cycles
    uint64_t BusyCycles = 0;     ///< total queue occupancy (kernel + comm)
    uint64_t BytesToDevice = 0;  ///< host-link bytes into this device
    uint64_t BytesFromDevice = 0; ///< host-link bytes out of this device
  };
  std::vector<PerDevice> Devices;

  /// \name Link totals
  /// @{
  uint64_t HostLinkBytes = 0;  ///< bytes moved across the host link
  uint64_t HostLinkCycles = 0; ///< serialized host-link cycles
  uint64_t PeerBytes = 0;      ///< bytes moved across the direct peer link
  uint64_t PeerCycles = 0;     ///< peer-link cycles
  /// @}

  /// Critical-path length: the group frontier after the last sync —
  /// per-phase maxima over the device queues plus the serialized
  /// communication phases.
  uint64_t MakespanCycles = 0;
  /// Sum of all per-device busy cycles plus serialized communication: the
  /// single-queue equivalent. MakespanCycles approaches
  /// SumDeviceCycles / N under perfect balance.
  uint64_t SumDeviceCycles = 0;
  /// Communication cycles on the critical path (group-frontier link
  /// phases plus the slowest device's mapped-transfer cycles).
  uint64_t CommCriticalCycles = 0;
  /// Number of syncAll() barriers.
  uint64_t SyncPoints = 0;

  /// Max over mean of per-device busy cycles (1.0 = perfectly balanced;
  /// OMP252 warns above 1.25). Returns 1.0 for an idle group.
  double loadImbalance() const;
  /// Fraction of the makespan spent communicating, in [0, 1].
  double communicationFraction() const;

  /// Serializes the stats as the report's `multi_device` payload
  /// (docs/compile-report.md, schema v9).
  json::Value toJSON() const;
};

/// N simulated devices with per-device in-order launch queues and a
/// deterministic bulk-synchronous completion model. Launches enqueue onto
/// one device's clock; syncAll() advances the shared group frontier by the
/// slowest queue; link transfers run on the synced frontier (the host link
/// is one shared, serializing resource). Everything is deterministic: the
/// same launches and transfers produce the same makespan, and the
/// completion-order perturbation knob changes queue timing only — never
/// simulated memory contents.
class DeviceGroup {
public:
  explicit DeviceGroup(DeviceGroupSpec Spec);
  ~DeviceGroup();

  const DeviceGroupSpec &spec() const { return Spec; }
  unsigned size() const { return (unsigned)Dev.size(); }
  GPUDevice &device(unsigned I) { return *Dev[I]; }
  const GPUDevice &device(unsigned I) const { return *Dev[I]; }

  /// Deterministic completion-order perturbation (tests): when \p Seed is
  /// non-zero every launch completion is delayed by a seed/device/launch
  /// hashed jitter of up to ~1000 cycles. Perturbs makespan and sync
  /// ordering, never kernel results — the determinism tests demand
  /// bit-identical residuals under any seed.
  void setCompletionPerturbation(uint64_t Seed) { PerturbSeed = Seed; }

  /// Enqueues one kernel launch on device \p I: runs the kernel on that
  /// device and advances its queue clock by the launch's totalCycles()
  /// (mapped-buffer transfer cycles count as communication and host-link
  /// traffic). Returns the launch's KernelStats.
  KernelStats launch(unsigned I, Module &M, Function *Kernel,
                     const LaunchConfig &Config,
                     const std::vector<uint64_t> &Args,
                     const NativeRuntimeBinding &RTL);

  /// Barrier across all queues: the group frontier advances by the
  /// slowest device's pending cycles and every queue aligns to it.
  void syncAll();

  /// One host-link hop of \p Bytes to or from device \p I, on the synced
  /// frontier (the host link serializes). Costed with device \p I's own
  /// hostTransferCycles. Accounting only — callers move the actual bytes
  /// via GPUDevice::memcpy{To,From}Device.
  void chargeHostTransfer(unsigned I, uint64_t Bytes, bool ToDevice);

  /// One device-to-device transfer of \p Bytes from \p Src to \p Dst:
  /// the direct peer link when the spec declares one, otherwise the
  /// host-staged double hop (source download + destination upload).
  /// Accounting only, like chargeHostTransfer.
  void chargePeerTransfer(unsigned Src, unsigned Dst, uint64_t Bytes);

  /// Stats snapshot: syncs all queues so the makespan includes every
  /// pending launch, then returns the accumulated statistics.
  const DeviceGroupStats &stats();

private:
  DeviceGroupSpec Spec;
  std::vector<std::unique_ptr<GPUDevice>> Dev;
  /// Pending per-device cycles since the last syncAll().
  std::vector<uint64_t> PhaseCycles;
  /// Portion of PhaseCycles that is mapped-transfer communication.
  std::vector<uint64_t> PhaseCommCycles;
  DeviceGroupStats Stats;
  uint64_t PerturbSeed = 0;
};

} // namespace ompgpu

#endif // OMPGPU_GPUSIM_DEVICEGROUP_H
