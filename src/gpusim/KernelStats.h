//===- gpusim/KernelStats.h - Kernel launch statistics ----------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measurements returned by a simulated kernel launch: the quantities the
/// paper reports in Fig. 10 (kernel time, shared memory, registers) plus
/// diagnostic counters.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_GPUSIM_KERNELSTATS_H
#define OMPGPU_GPUSIM_KERNELSTATS_H

#include <cstdint>
#include <string>

namespace ompgpu {

/// Result of one simulated kernel launch.
struct KernelStats {
  std::string KernelName;

  /// Simulated kernel time. Cycles is kernel-execution-only (the Fig. 11
  /// quantity the autotuner and the arch-differential compare); the modeled
  /// host<->device traffic is accounted separately below and combined by
  /// totalCycles().
  double Milliseconds = 0.0;
  uint64_t Cycles = 0;

  /// \name Modeled host<->device transfers (docs/data-mapping.md).
  /// Derived from LaunchConfig::Mappings: bytes copied to the device
  /// before launch (map kinds to/tofrom) and back after (from/tofrom),
  /// costed per buffer per direction via hostTransferCycles().
  /// @{
  uint64_t BytesToDevice = 0;
  uint64_t BytesFromDevice = 0;
  uint64_t TransferCycles = 0;
  /// What a conservative copy-everything-both-ways mapping would have
  /// moved for the same buffers; reported so the inferred mapping's win
  /// is visible without a second launch.
  uint64_t ConservativeTransferBytes = 0;
  /// @}

  /// Kernel execution plus modeled transfer cycles.
  uint64_t totalCycles() const { return Cycles + TransferCycles; }

  /// Resource usage (Fig. 10 columns).
  unsigned RegsPerThread = 0;
  uint64_t StaticSharedBytes = 0;  ///< module shared globals
  uint64_t DynamicSharedBytes = 0; ///< peak data-sharing stack usage

  /// Occupancy derivation.
  unsigned BlocksPerSM = 0;
  unsigned ConcurrentBlocks = 0;
  unsigned Waves = 0;

  /// Diagnostics.
  uint64_t DynamicInstructions = 0;
  uint64_t Barriers = 0;
  uint64_t IndirectCalls = 0;
  uint64_t RuntimeCalls = 0;
  uint64_t HeapFallbackBytes = 0; ///< globalization spill to device heap
  unsigned SimulatedBlocks = 0;

  /// Out-of-memory: the globalization fallback heap demand across the
  /// concurrently resident blocks exceeds the device heap (the RSBench
  /// "OoM" bar in Fig. 11b).
  bool OutOfMemory = false;

  /// The launch's LaunchConfig::CycleBudget (0 = unlimited), echoed so
  /// report consumers can tell a watchdog trap from a plain trap budget.
  uint64_t CycleBudget = 0;
  /// The cycle-budget watchdog fired: a thread's clock exceeded
  /// CycleBudget and the launch was converted into a recoverable timeout
  /// trap (OMP220, docs/resilience.md) instead of hanging the process.
  bool WatchdogTimeout = false;

  /// Non-empty if a thread trapped (invalid access, cross-thread local
  /// dereference, unknown callee, ...).
  std::string Trap;

  bool ok() const { return Trap.empty(); }

  /// Enumerates the integer diagnostic counters under stable snake_case
  /// names, so the compile-report serialization and the bench counter
  /// tables cannot drift from this struct.
  template <typename Fn> void forEachCounter(Fn &&F) const {
    F("cycles", Cycles);
    F("dynamic_instructions", DynamicInstructions);
    F("barriers", Barriers);
    F("indirect_calls", IndirectCalls);
    F("runtime_calls", RuntimeCalls);
    F("heap_fallback_bytes", HeapFallbackBytes);
    F("bytes_to_device", BytesToDevice);
    F("bytes_from_device", BytesFromDevice);
    F("transfer_cycles", TransferCycles);
    F("conservative_transfer_bytes", ConservativeTransferBytes);
  }
};

} // namespace ompgpu

#endif // OMPGPU_GPUSIM_KERNELSTATS_H
