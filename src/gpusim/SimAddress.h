//===- gpusim/SimAddress.h - Simulated address encoding ---------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated pointers are 64-bit values with a segment tag in the top
/// byte. Local addresses are thread-private: a cross-thread access through
/// a local address traps, which is exactly the GPU property (Fig. 2,
/// bottom row) that forces the globalization machinery of Sec. IV-A.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_GPUSIM_SIMADDRESS_H
#define OMPGPU_GPUSIM_SIMADDRESS_H

#include <cstdint>

namespace ompgpu {

/// Memory segment of a simulated address.
enum class Seg : uint8_t {
  Null = 0,   ///< Null / invalid.
  Global = 1, ///< Device global memory.
  Shared = 3, ///< Per-block shared memory.
  Local = 5,  ///< Per-thread local memory (stack).
  Code = 7,   ///< Function addresses.
};

constexpr uint64_t makeSimAddr(Seg S, uint64_t Offset) {
  return (uint64_t(S) << 56) | (Offset & 0x00FFFFFFFFFFFFFFull);
}

constexpr Seg getSimAddrSeg(uint64_t Addr) {
  return Seg(uint8_t(Addr >> 56));
}

constexpr uint64_t getSimAddrOffset(uint64_t Addr) {
  return Addr & 0x00FFFFFFFFFFFFFFull;
}

/// Local (stack) addresses additionally encode the owning thread id in
/// bits [40,56). A dereference by a different thread is a simulated fault
/// — the behaviour the unsound LLVM 12 SPMD stack optimization runs into
/// (Fig. 3).
constexpr uint64_t makeLocalSimAddr(unsigned OwnerTid, uint64_t Offset) {
  return (uint64_t(Seg::Local) << 56) | (uint64_t(OwnerTid & 0xFFFF) << 40) |
         (Offset & 0xFFFFFFFFFFull);
}

constexpr unsigned getLocalSimAddrOwner(uint64_t Addr) {
  return unsigned((Addr >> 40) & 0xFFFF);
}

constexpr uint64_t getLocalSimAddrOffset(uint64_t Addr) {
  return Addr & 0xFFFFFFFFFFull;
}

} // namespace ompgpu

#endif // OMPGPU_GPUSIM_SIMADDRESS_H
