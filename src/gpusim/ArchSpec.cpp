//===- gpusim/ArchSpec.cpp - Named GPU architecture specs ------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "gpusim/ArchSpec.h"
#include "support/FileSystem.h"
#include "support/Hashing.h"

#include <cmath>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <type_traits>

using namespace ompgpu;

namespace {

/// One field table each for MachineModel and CostParams, shared by the
/// serializer, the strict parser, and the fingerprint so the three can
/// never drift. \p M may be const (serialize/fingerprint) or mutable
/// (parse).
template <typename MM, typename Fn> void forEachMachineField(MM &M, Fn &&F) {
  F("num_sms", M.NumSMs);
  F("warp_size", M.WarpSize);
  F("max_threads_per_sm", M.MaxThreadsPerSM);
  F("max_blocks_per_sm", M.MaxBlocksPerSM);
  F("registers_per_sm", M.RegistersPerSM);
  F("max_regs_per_thread", M.MaxRegsPerThread);
  F("shared_mem_per_sm_bytes", M.SharedMemPerSMBytes);
  F("cache_lines", M.CacheLines);
  F("cache_line_bytes", M.CacheLineBytes);
  F("shared_mem_per_block_bytes", M.SharedMemPerBlockBytes);
  F("data_sharing_slab_bytes", M.DataSharingSlabBytes);
  F("device_heap_bytes", M.DeviceHeapBytes);
  F("clock_ghz", M.ClockGHz);
  // Schema v2: host<->device link (docs/data-mapping.md). Optional when
  // parsing a v1 document (defaults retained), required from v2 on.
  F("host_link_bytes_per_cycle", M.HostLinkBytesPerCycle);
  F("host_link_latency_cycles", M.HostLinkLatencyCycles);
}

template <typename CP, typename Fn> void forEachCostField(CP &C, Fn &&F) {
  F("alu_cycles", C.AluCycles);
  F("alu64_cycles", C.Alu64Cycles);
  F("math_cycles", C.MathCycles);
  F("branch_cycles", C.BranchCycles);
  F("select_cycles", C.SelectCycles);
  F("alloca_cycles", C.AllocaCycles);
  F("call_cycles", C.CallCycles);
  F("indirect_call_cycles", C.IndirectCallCycles);
  F("ret_cycles", C.RetCycles);
  F("local_mem_cycles", C.LocalMemCycles);
  F("shared_mem_cycles", C.SharedMemCycles);
  F("global_uniform_cycles", C.GlobalUniformCycles);
  F("global_coalesced_cycles", C.GlobalCoalescedCycles);
  F("global_uncoalesced_cycles", C.GlobalUncoalescedCycles);
  F("global_cached_cycles", C.GlobalCachedCycles);
  F("atomic_cycles", C.AtomicCycles);
  F("barrier_cycles", C.BarrierCycles);
  F("rt_query_cycles", C.RTQueryCycles);
  F("alloc_shared_cycles", C.AllocSharedCycles);
  F("alloc_shared_heap_fallback_cycles", C.AllocSharedHeapFallbackCycles);
  F("free_shared_cycles", C.FreeSharedCycles);
  F("coalesced_push_cycles", C.CoalescedPushCycles);
  F("pop_stack_cycles", C.PopStackCycles);
  F("set_work_cycles", C.SetWorkCycles);
  F("kernel_parallel_cycles", C.KernelParallelCycles);
  F("target_init_cycles", C.TargetInitCycles);
  F("legacy_rt_query_extra_cycles", C.LegacyRTQueryExtraCycles);
  F("legacy_target_init_cycles", C.LegacyTargetInitCycles);
  F("legacy_parallel_extra_cycles", C.LegacyParallelExtraCycles);
  F("latency_hiding_target_warps", C.LatencyHidingTargetWarps);
  F("occupancy_reg_cap", C.OccupancyRegCap);
  F("legacy_latency_factor", C.LegacyLatencyFactor);
  F("generic_handoff_cycles", C.GenericHandoffCycles);
  F("legacy_per_inst_overhead_cycles", C.LegacyPerInstOverheadCycles);
  F("openmp_abi_registers", C.OpenMPABIRegisters);
  F("register_budget", C.RegisterBudget);
  F("legacy_register_budget", C.LegacyRegisterBudget);
  F("spill_cost_cycles", C.SpillCostCycles);
}

json::Value serializeFields(const std::function<
    void(const std::function<void(const char *, const json::Value &)> &)>
                                &Walk) {
  json::Value Obj = json::Value::makeObject();
  Walk([&Obj](const char *Name, const json::Value &V) { Obj.set(Name, V); });
  return Obj;
}

/// Assigns one numeric JSON value into a typed field, rejecting the wrong
/// kind, negatives for unsigned fields, and 32-bit overflow.
template <typename T>
Error assignField(const std::string &Where, const json::Value &V, T &Out) {
  if constexpr (std::is_same_v<T, double>) {
    if (!V.isNumber())
      return Error::failure("arch spec: " + Where + ": expected a number");
    Out = V.asDouble();
    if (!std::isfinite(Out))
      return Error::failure("arch spec: " + Where + ": not finite");
    return Error::success();
  } else {
    if (V.kind() != json::Value::Kind::Integer)
      return Error::failure("arch spec: " + Where + ": expected an integer");
    int64_t I = V.asInt();
    if (I < 0)
      return Error::failure("arch spec: " + Where + ": negative value " +
                            std::to_string(I));
    if constexpr (std::is_same_v<T, unsigned>)
      if ((uint64_t)I > std::numeric_limits<unsigned>::max())
        return Error::failure("arch spec: " + Where + ": value " +
                              std::to_string(I) + " overflows 32 bits");
    Out = (T)I;
    return Error::success();
  }
}

/// Strictly parses one section object: every table field required unless
/// listed in \p Optional (schema back-compat), every document member known.
Error parseSection(
    const json::Value &Doc, const char *Section,
    const std::function<
        void(const std::function<void(const char *,
                                      std::function<Error(const json::Value &)>)>
                 &)> &Walk,
    const std::set<std::string> &Optional = {}) {
  const json::Value *Obj = Doc.find(Section);
  if (!Obj || !Obj->isObject())
    return Error::failure(std::string("arch spec: missing object section '") +
                          Section + "'");

  std::map<std::string, std::function<Error(const json::Value &)>> Setters;
  Walk([&](const char *Name, std::function<Error(const json::Value &)> Set) {
    Setters.emplace(Name, std::move(Set));
  });

  std::map<std::string, bool> Seen;
  for (const auto &[Key, Val] : Obj->members()) {
    auto It = Setters.find(Key);
    if (It == Setters.end())
      return Error::failure(std::string("arch spec: unknown field '") +
                            Section + "." + Key + "'");
    if (Seen[Key])
      return Error::failure(std::string("arch spec: duplicate field '") +
                            Section + "." + Key + "'");
    Seen[Key] = true;
    if (Error E = It->second(Val))
      return E;
  }
  for (const auto &[Name, Setter] : Setters) {
    (void)Setter;
    if (!Seen.count(Name) && !Optional.count(Name))
      return Error::failure(std::string("arch spec: missing field '") +
                            Section + "." + Name + "'");
  }
  return Error::success();
}

/// \name Built-in architectures (docs/architectures.md)
/// @{

/// The paper's evaluation machine; MachineModel's defaults.
ArchSpec makeV100() {
  ArchSpec A;
  A.Name = "v100";
  return A;
}

/// NVIDIA A100 (SXM4)-like: more SMs, a larger shared-memory carveout and
/// L2, slightly cheaper HBM2e access.
ArchSpec makeA100() {
  ArchSpec A;
  A.Name = "a100";
  A.Machine.NumSMs = 108;
  A.Machine.SharedMemPerSMBytes = 164 * 1024;
  A.Machine.SharedMemPerBlockBytes = 160 * 1024;
  A.Machine.CacheLines = 16384;
  A.Machine.DeviceHeapBytes = 16ull * 1024 * 1024;
  A.Machine.ClockGHz = 1.41;
  A.Machine.Costs.GlobalCoalescedCycles = 40;
  A.Machine.Costs.GlobalUncoalescedCycles = 288;
  A.Machine.Costs.GlobalCachedCycles = 20;
  A.Machine.Costs.AtomicCycles = 48;
  // NVLink3/PCIe4 host link: ~32 GB/s effective at 1.41 GHz.
  A.Machine.HostLinkBytesPerCycle = 22.7;
  A.Machine.HostLinkLatencyCycles = 7000;
  return A;
}

/// AMD MI100 (CDNA1)-like: 64-wide wavefronts, 120 CUs, 64 KiB LDS per
/// CU, a large VGPR file, 64-byte cache lines, and a memory system whose
/// uncoalesced penalty is worse (a 64-lane wavefront scatters across more
/// lines) while LDS and barriers are slightly cheaper.
ArchSpec makeMI100() {
  ArchSpec A;
  A.Name = "mi100";
  A.Machine.NumSMs = 120;
  A.Machine.WarpSize = 64;
  A.Machine.MaxThreadsPerSM = 2560;
  A.Machine.MaxBlocksPerSM = 16;
  A.Machine.RegistersPerSM = 131072;
  A.Machine.SharedMemPerSMBytes = 64 * 1024;
  A.Machine.SharedMemPerBlockBytes = 64 * 1024;
  A.Machine.CacheLines = 4096;
  A.Machine.CacheLineBytes = 64;
  A.Machine.ClockGHz = 1.50;
  A.Machine.Costs.SharedMemCycles = 10;
  A.Machine.Costs.BarrierCycles = 24;
  A.Machine.Costs.GlobalCoalescedCycles = 48;
  A.Machine.Costs.GlobalUncoalescedCycles = 400;
  A.Machine.Costs.LatencyHidingTargetWarps = 16;
  // PCIe4 x16 host link: ~32 GB/s effective at 1.50 GHz.
  A.Machine.HostLinkBytesPerCycle = 21.3;
  A.Machine.HostLinkLatencyCycles = 7500;
  return A;
}

/// @}

} // namespace

Error ArchSpec::validate() const {
  const MachineModel &M = Machine;
  auto Fail = [](const std::string &Msg) {
    return Error::failure("arch spec: " + Msg);
  };
  if (Name.empty())
    return Fail("name must be non-empty");
  if (M.WarpSize != 32 && M.WarpSize != 64)
    return Fail("warp_size must be 32 or 64, got " +
                std::to_string(M.WarpSize));
  if (M.NumSMs == 0)
    return Fail("num_sms must be non-zero");
  if (M.MaxThreadsPerSM == 0)
    return Fail("max_threads_per_sm must be non-zero");
  if (M.MaxThreadsPerSM % M.WarpSize != 0)
    return Fail("max_threads_per_sm (" + std::to_string(M.MaxThreadsPerSM) +
                ") must be a multiple of warp_size (" +
                std::to_string(M.WarpSize) + ")");
  if (M.MaxBlocksPerSM == 0)
    return Fail("max_blocks_per_sm must be non-zero");
  if (M.RegistersPerSM == 0)
    return Fail("registers_per_sm must be non-zero");
  if (M.MaxRegsPerThread == 0)
    return Fail("max_regs_per_thread must be non-zero");
  // Warps-per-SM x warp size (= resident threads) must be feasible for
  // the register file: every resident thread needs at least one register.
  if ((uint64_t)M.MaxThreadsPerSM > M.RegistersPerSM)
    return Fail("max_threads_per_sm (" + std::to_string(M.MaxThreadsPerSM) +
                ") exceeds the register-file bound registers_per_sm (" +
                std::to_string(M.RegistersPerSM) + ")");
  if (M.SharedMemPerSMBytes == 0)
    return Fail("shared_mem_per_sm_bytes must be non-zero");
  if (M.SharedMemPerBlockBytes == 0 ||
      M.SharedMemPerBlockBytes > M.SharedMemPerSMBytes)
    return Fail("shared_mem_per_block_bytes must be in [1, "
                "shared_mem_per_sm_bytes]");
  if (M.DataSharingSlabBytes > M.SharedMemPerBlockBytes)
    return Fail("data_sharing_slab_bytes (" +
                std::to_string(M.DataSharingSlabBytes) +
                ") exceeds shared_mem_per_block_bytes (" +
                std::to_string(M.SharedMemPerBlockBytes) + ")");
  if (M.CacheLines == 0 || M.CacheLineBytes == 0)
    return Fail("cache_lines and cache_line_bytes must be non-zero");
  if (M.DeviceHeapBytes == 0)
    return Fail("device_heap_bytes must be non-zero");
  if (!(M.ClockGHz > 0.0))
    return Fail("clock_ghz must be positive");
  // The host-link transfer model divides by the bandwidth and always pays
  // the setup latency; zero or negative values would produce divide-by-zero
  // or free transfers instead of a diagnosable spec error.
  if (!(M.HostLinkBytesPerCycle > 0.0))
    return Fail("host_link_bytes_per_cycle must be positive, got " +
                std::to_string(M.HostLinkBytesPerCycle));
  if (M.HostLinkLatencyCycles == 0)
    return Fail("host_link_latency_cycles must be non-zero");
  const CostParams &C = M.Costs;
  if (C.AluCycles == 0 || C.BarrierCycles == 0 || C.SharedMemCycles == 0 ||
      C.GlobalCoalescedCycles == 0)
    return Fail("core cost-table entries (alu/barrier/shared/global "
                "coalesced cycles) must be non-zero");
  if (C.LatencyHidingTargetWarps == 0 || C.OccupancyRegCap == 0)
    return Fail("latency_hiding_target_warps and occupancy_reg_cap must be "
                "non-zero");
  if (C.RegisterBudget == 0 || C.LegacyRegisterBudget == 0)
    return Fail("register budgets must be non-zero");
  if (!(C.LegacyLatencyFactor > 0.0) ||
      !(C.LegacyPerInstOverheadCycles >= 0.0))
    return Fail("legacy latency/overhead factors must be positive");
  return Error::success();
}

json::Value ompgpu::archSpecToJSON(const ArchSpec &A) {
  json::Value Doc = json::Value::makeObject();
  Doc.set("schema_version", ArchSpecSchemaVersion).set("name", A.Name);
  Doc.set("machine", serializeFields([&A](const auto &F) {
            forEachMachineField(A.Machine, [&F](const char *N, const auto &V) {
              F(N, json::Value(V));
            });
          }));
  Doc.set("costs", serializeFields([&A](const auto &F) {
            forEachCostField(A.Machine.Costs,
                             [&F](const char *N, const auto &V) {
                               F(N, json::Value(V));
                             });
          }));
  return Doc;
}

Expected<ArchSpec> ompgpu::parseArchSpec(const json::Value &Doc) {
  if (!Doc.isObject())
    return Error::failure("arch spec: document is not an object");
  for (const auto &[Key, Val] : Doc.members()) {
    (void)Val;
    if (Key != "schema_version" && Key != "name" && Key != "machine" &&
        Key != "costs")
      return Error::failure("arch spec: unknown field '" + Key + "'");
  }

  const json::Value *SV = Doc.find("schema_version");
  if (!SV || SV->kind() != json::Value::Kind::Integer)
    return Error::failure("arch spec: missing integer 'schema_version'");
  int64_t Version = SV->asInt();
  if (Version < 1 || Version > (int64_t)ArchSpecSchemaVersion)
    return Error::failure("arch spec: unsupported schema_version " +
                          std::to_string(Version) + " (expected 1.." +
                          std::to_string(ArchSpecSchemaVersion) + ")");
  const json::Value *Name = Doc.find("name");
  if (!Name || !Name->isString() || Name->asString().empty())
    return Error::failure("arch spec: missing non-empty string 'name'");

  // Fields introduced after the document's schema version stay optional so
  // old specs keep parsing (with the built-in defaults); a current-version
  // document must spell out the full machine table.
  std::set<std::string> OptionalMachine;
  if (Version < 2) {
    OptionalMachine.insert("host_link_bytes_per_cycle");
    OptionalMachine.insert("host_link_latency_cycles");
  }

  ArchSpec A;
  A.Name = Name->asString();
  if (Error E = parseSection(
          Doc, "machine",
          [&A](const auto &Reg) {
            forEachMachineField(A.Machine, [&Reg](const char *N, auto &Field) {
              Reg(N, [N, &Field](const json::Value &V) {
                return assignField(std::string("machine.") + N, V, Field);
              });
            });
          },
          OptionalMachine))
    return E;
  if (Error E = parseSection(Doc, "costs", [&A](const auto &Reg) {
        forEachCostField(A.Machine.Costs, [&Reg](const char *N, auto &Field) {
          Reg(N, [N, &Field](const json::Value &V) {
            return assignField(std::string("costs.") + N, V, Field);
          });
        });
      }))
    return E;
  if (Error E = A.validate())
    return E;
  return A;
}

Expected<ArchSpec> ompgpu::parseArchSpecText(const std::string &Text) {
  json::Value Doc;
  std::string ParseError;
  if (!json::parse(Text, Doc, &ParseError))
    return Error::failure("arch spec: malformed JSON: " + ParseError);
  return parseArchSpec(Doc);
}

std::vector<std::string> ompgpu::archRegistryNames() {
  return {"v100", "a100", "mi100"};
}

Expected<ArchSpec> ompgpu::lookupArch(const std::string &Name) {
  ArchSpec A;
  if (Name == "v100")
    A = makeV100();
  else if (Name == "a100")
    A = makeA100();
  else if (Name == "mi100")
    A = makeMI100();
  else {
    std::string Known;
    for (const std::string &N : archRegistryNames())
      Known += (Known.empty() ? "" : ", ") + N;
    return Error::failure("unknown architecture '" + Name + "' (known: " +
                          Known + ", or a path to a *.json spec)");
  }
  if (Error E = A.validate())
    return E; // a registry entry violating its own schema is a bug
  return A;
}

Expected<ArchSpec> ompgpu::resolveArch(const std::string &NameOrPath) {
  if (NameOrPath.size() > 5 &&
      NameOrPath.rfind(".json") == NameOrPath.size() - 5) {
    Expected<std::string> Text = readTextFile(NameOrPath);
    if (!Text)
      return Error::failure("arch spec '" + NameOrPath +
                            "': " + Text.message());
    return parseArchSpecText(*Text);
  }
  return lookupArch(NameOrPath);
}

uint64_t ompgpu::archFingerprint(const ArchSpec &A) {
  uint64_t H = hashBytes("ompgpu-arch-spec");
  H = hashCombine(H, ArchSpecSchemaVersion);
  H = hashCombine(H, hashBytes(A.Name));
  auto Mix = [&H](const char *Name, const auto &V) {
    H = hashCombine(H, hashBytes(Name));
    if constexpr (std::is_same_v<std::decay_t<decltype(V)>, double>) {
      double D = V;
      uint64_t Bits;
      static_assert(sizeof(Bits) == sizeof(D));
      __builtin_memcpy(&Bits, &D, sizeof(Bits));
      H = hashCombine(H, Bits);
    } else {
      H = hashCombine(H, (uint64_t)V);
    }
  };
  forEachMachineField(A.Machine, Mix);
  forEachCostField(A.Machine.Costs, Mix);
  return H;
}
