//===- gpusim/Device.h - Simulated GPU device -------------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated GPU: global memory management and kernel launches. A
/// launch interprets the kernel IR with one logical thread per GPU thread,
/// per-thread cycle clocks, named block barriers with clock alignment, and
/// a static memory-coalescing cost model. Device runtime functions are
/// bound through a NativeRuntimeBinding (implemented in src/rtl).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_GPUSIM_DEVICE_H
#define OMPGPU_GPUSIM_DEVICE_H

#include "gpusim/KernelStats.h"
#include "gpusim/MachineModel.h"
#include "gpusim/SimAddress.h"
#include "ir/MapKind.h"

#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ompgpu {

class Function;
class Module;
class ProfileCollector;
class SimThread;

/// Base class for runtime-private per-block state (defined by src/rtl).
class RTLBlockStateBase {
public:
  virtual ~RTLBlockStateBase();
};

/// Outcome of a native runtime call.
struct NativeResult {
  enum class Kind : uint8_t { Value, Block, Trap } K = Kind::Value;
  uint64_t Ret = 0;
  unsigned BarrierId = 0;
  unsigned BarrierCount = 0;
  unsigned ExtraCycles = 0;
  std::string Msg;

  static NativeResult value(uint64_t V, unsigned Cycles = 0) {
    NativeResult R;
    R.Ret = V;
    R.ExtraCycles = Cycles;
    return R;
  }
  static NativeResult voidValue(unsigned Cycles = 0) {
    return value(0, Cycles);
  }
  /// Block the calling thread on named barrier \p Id until \p Count
  /// threads of the block arrive.
  static NativeResult barrier(unsigned Id, unsigned Count,
                              unsigned Cycles = 0) {
    NativeResult R;
    R.K = Kind::Block;
    R.BarrierId = Id;
    R.BarrierCount = Count;
    R.ExtraCycles = Cycles;
    return R;
  }
  static NativeResult trap(std::string Msg) {
    NativeResult R;
    R.K = Kind::Trap;
    R.Msg = std::move(Msg);
    return R;
  }
};

/// Signature of a native runtime function implementation.
using NativeHandler =
    std::function<NativeResult(SimThread &, const std::vector<uint64_t> &)>;

/// Everything the device needs to resolve runtime declarations.
struct NativeRuntimeBinding {
  std::map<std::string, NativeHandler> Handlers;
  std::function<std::unique_ptr<RTLBlockStateBase>()> MakeBlockState;
};

/// One mapped buffer of a launch: which direction(s) its map clause
/// copies and how many bytes move per direction. The harness builds these
/// from the kernel's effective ParamMappings (docs/data-mapping.md).
struct MappedBuffer {
  std::string Name;
  MapKind Kind = MapKind::ToFrom;
  uint64_t Bytes = 0;
};

/// Kernel launch configuration.
struct LaunchConfig {
  unsigned GridDim = 1;
  unsigned BlockDim = 32;
  RuntimeFlavor Flavor = RuntimeFlavor::Modern;
  /// 0 simulates every block; otherwise only this many (evenly strided)
  /// blocks run and the kernel time is extrapolated over all waves.
  unsigned MaxSimulatedBlocks = 0;
  /// Watchdog cycle budget per simulated thread (0 = unlimited): a thread
  /// whose clock exceeds it traps with a recoverable watchdog timeout
  /// (KernelStats::WatchdogTimeout, OMP220) instead of spinning forever
  /// on hung or runaway kernels. See docs/resilience.md.
  uint64_t CycleBudget = 0;
  /// Profiling mode (docs/pgo.md): when set, the interpreter counts
  /// per-anchor parallel-region dispatches, barrier executions, guard
  /// entries, memory touches of anchored allocations, and the kernel's
  /// shared-stack high-water mark into this collector. The simulation is
  /// deterministic, so repeated identical runs produce identical profiles.
  ProfileCollector *Profile = nullptr;
  /// Buffers this launch maps across the host link. Each contributes its
  /// per-direction bytes and a hostTransferCycles() term to the launch's
  /// KernelStats (BytesToDevice/BytesFromDevice/TransferCycles); an empty
  /// list models device-resident data, i.e. no transfer cost.
  std::vector<MappedBuffer> Mappings;
};

/// A simulated GPU with persistent global memory across launches.
class GPUDevice {
public:
  explicit GPUDevice(MachineModel MM = MachineModel());
  ~GPUDevice();

  const MachineModel &getMachine() const { return Machine; }
  MachineModel &getMachine() { return Machine; }

  /// \name Global memory management
  /// @{
  /// Allocates device global memory; returns its simulated address.
  uint64_t allocate(uint64_t Bytes);
  /// Size of the allocation that starts at \p Addr, or 0 when \p Addr is
  /// not an allocation base. Lets the launch harness recover buffer sizes
  /// for transfer modeling from pointer kernel arguments.
  uint64_t allocationBytes(uint64_t Addr) const {
    auto It = Allocations.find(Addr);
    return It == Allocations.end() ? 0 : It->second;
  }
  void memcpyToDevice(uint64_t Addr, const void *Src, uint64_t Bytes);
  void memcpyFromDevice(void *Dst, uint64_t Addr, uint64_t Bytes) const;

  template <typename T>
  uint64_t allocateArray(const std::vector<T> &Host) {
    uint64_t Addr = allocate(Host.size() * sizeof(T));
    memcpyToDevice(Addr, Host.data(), Host.size() * sizeof(T));
    return Addr;
  }
  template <typename T>
  std::vector<T> downloadArray(uint64_t Addr, size_t Count) const {
    std::vector<T> Host(Count);
    memcpyFromDevice(Host.data(), Addr, Count * sizeof(T));
    return Host;
  }
  /// @}

  /// Launches \p Kernel from \p M. \p Args are the kernel parameters as
  /// raw 64-bit values (pointers are simulated addresses).
  KernelStats launchKernel(Module &M, Function *Kernel,
                           const LaunchConfig &Config,
                           const std::vector<uint64_t> &Args,
                           const NativeRuntimeBinding &RTL);

  /// \name Internal access for the interpreter and natives
  /// @{
  std::vector<uint8_t> &getGlobalArena() { return GlobalArena; }
  uint64_t getGlobalBrk() const { return GlobalBrk; }
  /// Bump-allocates device-heap memory (globalization fallback).
  uint64_t heapAllocate(uint64_t Bytes) { return allocate(Bytes); }
  /// @}

private:
  MachineModel Machine;
  std::vector<uint8_t> GlobalArena;
  uint64_t GlobalBrk = 64; // keep low addresses invalid
  /// Allocation base address -> size, for allocationBytes().
  std::map<uint64_t, uint64_t> Allocations;
};

} // namespace ompgpu

#endif // OMPGPU_GPUSIM_DEVICE_H
