//===- gpusim/SimThread.h - Native-call view of a GPU thread ----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface native runtime handlers (src/rtl) use to inspect and
/// mutate the simulated execution: thread/block geometry, memory access,
/// and the per-block data-sharing stack / device-heap allocators that back
/// the globalization runtime calls.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_GPUSIM_SIMTHREAD_H
#define OMPGPU_GPUSIM_SIMTHREAD_H

#include <cstdint>
#include <string>

namespace ompgpu {

class RTLBlockStateBase;

/// Handle to the simulated thread currently executing a native call.
class SimThread {
public:
  virtual ~SimThread();

  /// \name Geometry
  /// @{
  virtual unsigned getThreadId() const = 0;
  virtual unsigned getBlockDim() const = 0;
  virtual unsigned getBlockId() const = 0;
  virtual unsigned getGridDim() const = 0;
  virtual unsigned getWarpSize() const = 0;
  /// Size of the shared-memory slab backing __kmpc_alloc_shared.
  virtual uint64_t getDataSharingSlabBytes() const = 0;
  /// @}

  /// Runtime-private per-block state (created by the binding's factory).
  virtual RTLBlockStateBase &getRTLState() = 0;

  /// \name Memory access (returns false on an invalid address)
  /// @{
  virtual bool readMemory(uint64_t Addr, void *Dst, uint64_t Bytes) = 0;
  virtual bool writeMemory(uint64_t Addr, const void *Src,
                           uint64_t Bytes) = 0;
  /// @}

  /// \name Globalization backing storage
  /// @{
  /// Allocates from the block's shared-memory data-sharing slab; returns 0
  /// when the slab is exhausted (callers fall back to heapAlloc).
  virtual uint64_t sharedStackAlloc(uint64_t Bytes) = 0;
  virtual void sharedStackFree(uint64_t Bytes) = 0;
  /// Allocates from the device heap, tracking per-block demand for the
  /// out-of-memory model.
  virtual uint64_t heapAlloc(uint64_t Bytes) = 0;
  virtual void heapFree(uint64_t Bytes) = 0;
  /// Overrides the per-access cost of a shared-memory region; used to
  /// model the bank behaviour of runtime allocations: the simplified
  /// scheme's per-variable allocations are packed (conflicting), the
  /// legacy warp-coalesced pushes are SoA (conflict-free).
  virtual void setSharedRegionCost(uint64_t Addr, uint64_t Bytes,
                                   unsigned CyclesPerAccess) = 0;
  virtual void clearSharedRegionCost(uint64_t Addr) = 0;
  /// @}
};

} // namespace ompgpu

#endif // OMPGPU_GPUSIM_SIMTHREAD_H
