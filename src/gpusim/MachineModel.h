//===- gpusim/MachineModel.h - GPU machine & cost parameters ---*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameters of the simulated GPU. Defaults approximate the NVIDIA V100
/// (SXM2) the paper evaluates on: 80 SMs, 64 warps/SM, 96 KiB shared
/// memory and a 64K register file per SM. Cost parameters are expressed in
/// cycles; the evaluation relies on *relative* kernel times, so only the
/// ratios matter (memory vs. ALU vs. barrier vs. runtime calls).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_GPUSIM_MACHINEMODEL_H
#define OMPGPU_GPUSIM_MACHINEMODEL_H

#include <cassert>
#include <cmath>
#include <cstdint>

namespace ompgpu {

/// Instruction and runtime-call costs in cycles.
struct CostParams {
  // Scalar compute.
  unsigned AluCycles = 1;
  unsigned Alu64Cycles = 2;
  unsigned MathCycles = 16;
  unsigned BranchCycles = 2;
  unsigned SelectCycles = 1;
  unsigned AllocaCycles = 1;
  unsigned CallCycles = 6;
  /// Calls through function pointers: instruction fetch stalls, no
  /// inlining-based register allocation, divergent-target serialization.
  /// This is the generic state machine's per-region cost the custom state
  /// machine rewrite eliminates (Sec. IV-B2).
  unsigned IndirectCallCycles = 6000;
  unsigned RetCycles = 2;

  // Memory, by resolved address space and (for global) static coalescing
  // classification.
  unsigned LocalMemCycles = 6;
  unsigned SharedMemCycles = 12;
  unsigned GlobalUniformCycles = 32;
  unsigned GlobalCoalescedCycles = 44;
  unsigned GlobalUncoalescedCycles = 320;
  /// Global accesses that hit the (modelled) L2 cache.
  unsigned GlobalCachedCycles = 24;
  unsigned AtomicCycles = 64;
  unsigned BarrierCycles = 32;

  // Device runtime calls (modern runtime).
  unsigned RTQueryCycles = 8;
  unsigned AllocSharedCycles = 250;
  unsigned AllocSharedHeapFallbackCycles = 600;
  unsigned FreeSharedCycles = 120;
  unsigned CoalescedPushCycles = 48; ///< amortized per warp (SoA push)
  unsigned PopStackCycles = 24;
  unsigned SetWorkCycles = 16;
  unsigned KernelParallelCycles = 12;
  unsigned TargetInitCycles = 64;

  // The LLVM 12 "full" runtime taxes (Sec. V-C discussion: the baseline's
  // slowness is not only globalization).
  unsigned LegacyRTQueryExtraCycles = 24;
  unsigned LegacyTargetInitCycles = 4000;
  unsigned LegacyParallelExtraCycles = 500;

  // Latency hiding: memory and long-latency math costs scale up when too
  // few warps are resident per SM to cover the pipelines (this is how
  // register pressure and shared-memory footprints become kernel time).
  unsigned LatencyHidingTargetWarps = 24;
  /// Register count beyond which the allocator trades spills for
  /// occupancy; caps the occupancy penalty of very register-hungry
  /// kernels.
  unsigned OccupancyRegCap = 200;
  /// Additional latency factor of the LLVM 12 runtime/codegen.
  double LegacyLatencyFactor = 1.35;
  /// Cost of one generic-mode work-descriptor handoff observed by each
  /// worker (the device runtime's state-machine protocol; cf. [1]).
  unsigned GenericHandoffCycles = 9000;
  /// Per-executed-instruction overhead of the LLVM 12 device code
  /// generation ("generic LLVM advances" the paper credits part of the
  /// improvement to).
  double LegacyPerInstOverheadCycles = 1.2;
  /// Registers consumed by the OpenMP runtime ABI/state machine in device
  /// kernels (Fig. 10: OpenMP builds use 144-255 registers where the CUDA
  /// versions use 26-32).
  unsigned OpenMPABIRegisters = 40;
  // Register budgets: estimated demand beyond the budget spills to local
  // memory. The legacy toolchain reserves registers for its runtime ABI.
  unsigned RegisterBudget = 255;
  unsigned LegacyRegisterBudget = 160;
  unsigned SpillCostCycles = 10;
};

/// Which device runtime generation the module was compiled against.
enum class RuntimeFlavor : uint8_t {
  Modern, ///< The paper's rewritten runtime (LLVM 13 / Dev).
  Legacy, ///< The LLVM 12 runtime with full-runtime initialization.
};

/// Simulated GPU hardware description (defaults: V100-like).
struct MachineModel {
  unsigned NumSMs = 80;
  unsigned WarpSize = 32;
  unsigned MaxThreadsPerSM = 2048;
  unsigned MaxBlocksPerSM = 32;
  uint64_t RegistersPerSM = 65536;
  unsigned MaxRegsPerThread = 255;
  uint64_t SharedMemPerSMBytes = 96 * 1024;
  /// Modelled L2 cache: direct-mapped, 128-byte lines (per-block slice).
  unsigned CacheLines = 8192;
  unsigned CacheLineBytes = 128;
  uint64_t SharedMemPerBlockBytes = 48 * 1024;
  /// Shared-memory slab backing __kmpc_alloc_shared before falling back
  /// to the device heap.
  uint64_t DataSharingSlabBytes = 16 * 1024;
  /// Device heap backing the globalization fallback
  /// (cf. LIBOMPTARGET_HEAP_SIZE in the paper's RSBench discussion).
  uint64_t DeviceHeapBytes = 8ull * 1024 * 1024;
  double ClockGHz = 1.38;
  /// Host<->device link (PCIe/NVLink) used for mapped-buffer transfers
  /// (docs/data-mapping.md). V100 default: PCIe 3.0 x16 at ~16 GB/s
  /// effective, expressed in device cycles at 1.38 GHz.
  double HostLinkBytesPerCycle = 11.6;
  /// Fixed per-transfer setup cost (driver launch + DMA ramp), ~5 us.
  unsigned HostLinkLatencyCycles = 6900;
  CostParams Costs;
};

/// Cycles to move \p Bytes across the host link in one direction: zero for
/// an empty transfer, else the fixed setup latency plus the bandwidth term
/// (rounded up). ArchSpec::validate() rejects non-positive bandwidth and
/// zero latency, so a validated machine can never divide by zero here; the
/// assert catches hand-built MachineModels that skipped validation.
inline uint64_t hostTransferCycles(const MachineModel &M, uint64_t Bytes) {
  if (Bytes == 0)
    return 0;
  assert(M.HostLinkBytesPerCycle > 0.0 &&
         "host_link_bytes_per_cycle must be positive (ArchSpec::validate)");
  double Bandwidth = M.HostLinkBytesPerCycle > 0 ? M.HostLinkBytesPerCycle
                                                 : 1.0;
  return M.HostLinkLatencyCycles +
         static_cast<uint64_t>(std::ceil((double)Bytes / Bandwidth));
}

} // namespace ompgpu

#endif // OMPGPU_GPUSIM_MACHINEMODEL_H
