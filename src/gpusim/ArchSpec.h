//===- gpusim/ArchSpec.h - Named GPU architecture specs ---------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named, validated, JSON-round-trippable GPU architecture descriptions
/// (docs/architectures.md). An ArchSpec wraps a MachineModel under a
/// stable name ("v100", "a100", "mi100") so the simulator, the optimizer
/// defaults (warp size, shared-memory budget), the compile-cache key, and
/// the autotuner all agree on which device they are talking about. The
/// registry provides the built-in architectures; resolveArch additionally
/// accepts a path to a JSON spec so custom machines need no rebuild.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_GPUSIM_ARCHSPEC_H
#define OMPGPU_GPUSIM_ARCHSPEC_H

#include "gpusim/MachineModel.h"
#include "support/Error.h"
#include "support/JSON.h"

#include <string>
#include <vector>

namespace ompgpu {

/// Version of the ArchSpec JSON schema (docs/architectures.md). Bump on
/// any field rename/removal; the strict parser rejects versions above the
/// current one and parses older documents with fields added since then
/// staying optional (v2 added the host-link transfer fields).
inline constexpr unsigned ArchSpecSchemaVersion = 2;

/// One named simulated-GPU architecture.
struct ArchSpec {
  /// Stable identifier: registry key, -march= value, compile-report and
  /// tuned.json provenance, cache-key material.
  std::string Name = "v100";
  MachineModel Machine;

  /// Checks the spec's internal consistency: warp/wavefront size is 32 or
  /// 64, counts and capacities are non-zero, per-block shared memory fits
  /// the SM, the data-sharing slab fits a block, and the resident-thread
  /// bound is register-file-feasible (MaxThreadsPerSM, i.e. warps-per-SM x
  /// warp size, must not exceed RegistersPerSM — every resident thread
  /// needs at least one register). Returns the first violation as a typed
  /// Error naming the offending field.
  Error validate() const;
};

/// Serializes \p A into the schema-versioned JSON document. Deterministic
/// member order, so serialize(parse(serialize(x))) is byte-identical.
json::Value archSpecToJSON(const ArchSpec &A);

/// Strictly parses an ArchSpec document: every schema field must be
/// present with the right type, unknown fields are rejected by name, and
/// the result must pass validate().
Expected<ArchSpec> parseArchSpec(const json::Value &Doc);

/// parseArchSpec over raw JSON text.
Expected<ArchSpec> parseArchSpecText(const std::string &Text);

/// Names of the built-in architectures, in registry order
/// (docs/architectures.md): "v100" (32-wide, 80 SMs, 96 KiB shared/SM),
/// "a100" (32-wide, 108 SMs, 164 KiB), "mi100" (64-wide wavefronts,
/// 120 CUs, 64 KiB LDS).
std::vector<std::string> archRegistryNames();

/// Returns the built-in spec registered under \p Name.
Expected<ArchSpec> lookupArch(const std::string &Name);

/// Resolves a -march= value: a registry name, or (when the value ends in
/// ".json") a path to a JSON spec file, parsed strictly and validated.
Expected<ArchSpec> resolveArch(const std::string &NameOrPath);

/// Hashes every field of \p A (name, machine geometry, full cost table).
/// Folded into the compile-service pipeline fingerprint so warm-cache
/// entries can never cross architectures (docs/compile-service.md).
uint64_t archFingerprint(const ArchSpec &A);

} // namespace ompgpu

#endif // OMPGPU_GPUSIM_ARCHSPEC_H
