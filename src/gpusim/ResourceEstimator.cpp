//===- gpusim/ResourceEstimator.cpp - Registers & occupancy ----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "gpusim/ResourceEstimator.h"
#include "analysis/CallGraph.h"
#include "analysis/RegisterPressure.h"
#include "ir/Module.h"

#include <algorithm>

using namespace ompgpu;

KernelResources ompgpu::estimateKernelResources(const Module &M,
                                                const Function *Kernel,
                                                const MachineModel &Machine,
                                                unsigned RegisterBudget) {
  KernelResources Res;
  CallGraph CG(M);
  std::set<Function *> Reachable =
      CG.reachableFrom(const_cast<Function *>(Kernel));

  // Base estimate: the deepest register demand among reachable functions,
  // plus a small per-call frame overhead. GPU compilers effectively inline
  // or allocate per-function register windows; the maximum is a reasonable
  // proxy for relative comparisons.
  unsigned MaxPressure = 0; // damped below: allocators split live ranges
  bool HasIndirect = false;
  bool CallsAddressTaken = false;
  for (const Function *F : Reachable) {
    if (F->isDeclaration())
      continue;
    MaxPressure = std::max(MaxPressure, computeMaxRegisterPressure(*F));
    for (const BasicBlock *BB : *F)
      for (const Instruction *I : *BB)
        if (const auto *CI = dyn_cast<CallInst>(I)) {
          if (CI->isIndirectCall())
            HasIndirect = true;
          // Taking a function's address (e.g. passing a parallel-region
          // wrapper to __kmpc_parallel_51) creates spurious call edges in
          // vendor toolchains: the callee set is unknown, so the register
          // allocator must assume the worst case.
          for (unsigned A = 0, E = CI->arg_size(); A != E; ++A)
            if (isa<Function>(CI->getArgOperand(A)))
              CallsAddressTaken = true;
        }
  }

  if (MaxPressure > 64)
    MaxPressure = 64 + (MaxPressure - 64) / 2;
  unsigned Regs = 10 + MaxPressure; // fixed overhead: ABI/system registers
  // OpenMP device images carry the runtime's state machine and ABI state.
  if (const Function *Init = M.getFunction("__kmpc_target_init"))
    if (Init->hasUses())
      Regs += Machine.Costs.OpenMPABIRegisters;
  if (HasIndirect || CallsAddressTaken) {
    Res.SpuriousCallEdgePenalty = true;
    Regs += 64;
  }
  Res.RawRegDemand = Regs;
  unsigned Budget = RegisterBudget ? RegisterBudget
                                   : Machine.MaxRegsPerThread;
  Budget = std::min<unsigned>(Budget, Machine.MaxRegsPerThread);
  Res.RegsPerThread = std::min<unsigned>(Regs, Budget);
  Res.StaticSharedBytes = M.getStaticSharedMemoryBytes();
  return Res;
}

unsigned ompgpu::computeBlocksPerSM(const MachineModel &Machine,
                                    const KernelResources &Res,
                                    unsigned BlockDim,
                                    uint64_t DynamicSharedBytes) {
  unsigned ByThreads = Machine.MaxThreadsPerSM / std::max(1u, BlockDim);
  uint64_t RegsPerBlock =
      (uint64_t)std::max(1u, Res.RegsPerThread) * BlockDim;
  unsigned ByRegs = (unsigned)(Machine.RegistersPerSM / RegsPerBlock);
  uint64_t SharedPerBlock = Res.StaticSharedBytes + DynamicSharedBytes;
  unsigned ByShared =
      (unsigned)(Machine.SharedMemPerSMBytes / std::max<uint64_t>(
                                                   1, SharedPerBlock));
  unsigned Blocks = std::min(
      {Machine.MaxBlocksPerSM, ByThreads, ByRegs, ByShared});
  return std::max(1u, Blocks);
}
