//===- gpusim/ResourceEstimator.h - Registers & occupancy ------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Estimates per-kernel register usage from SSA liveness, including the
/// spurious-call-edge penalty for address-taken functions reachable from
/// the kernel (LLVM PR46450, Sec. IV-B2) — the effect the custom state
/// machine rewrite removes. Also derives occupancy (resident blocks per
/// SM) from registers and shared memory, which feeds kernel time.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_GPUSIM_RESOURCEESTIMATOR_H
#define OMPGPU_GPUSIM_RESOURCEESTIMATOR_H

#include "gpusim/MachineModel.h"

namespace ompgpu {

class Function;
class Module;

/// Register/shared-memory summary for a kernel.
struct KernelResources {
  unsigned RegsPerThread = 0;
  /// Estimated demand before applying the register budget; the excess
  /// spills to local memory.
  unsigned RawRegDemand = 0;
  uint64_t StaticSharedBytes = 0;
  /// True if an indirect call (or address-taken function) inflated the
  /// register estimate.
  bool SpuriousCallEdgePenalty = false;
};

/// Estimates the resources of \p Kernel within \p M.
KernelResources estimateKernelResources(const Module &M,
                                        const Function *Kernel,
                                        const MachineModel &Machine,
                                        unsigned RegisterBudget = 0);

/// Derives the number of concurrently resident blocks per SM.
unsigned computeBlocksPerSM(const MachineModel &Machine,
                            const KernelResources &Res, unsigned BlockDim,
                            uint64_t DynamicSharedBytes);

} // namespace ompgpu

#endif // OMPGPU_GPUSIM_RESOURCEESTIMATOR_H
