//===- transforms/Simplify.cpp - Constprop, DCE, CFG cleanup ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "transforms/Simplify.h"
#include "analysis/CFG.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/STLExtras.h"
#include "support/Statistic.h"
#include "transforms/ConstantFold.h"

#include <set>

using namespace ompgpu;

#define DEBUG_TYPE "simplify"
OMPGPU_STATISTIC(NumConstantsFolded, "Instructions folded to constants");
OMPGPU_STATISTIC(NumDeadInstsRemoved, "Dead instructions removed");

bool ompgpu::foldConstants(Function &F) {
  if (F.isDeclaration())
    return false;
  IRContext &Ctx = F.getContext();
  bool Changed = false;
  bool LocalChanged = true;
  while (LocalChanged) {
    LocalChanged = false;
    for (BasicBlock *BB : F) {
      for (Instruction *I : BB->getInstructions()) {
        if (I->getType()->isVoidTy())
          continue;
        Constant *C = constantFoldInstruction(I, Ctx);
        if (!C)
          continue;
        I->replaceAllUsesWith(C);
        I->eraseFromParent();
        ++NumConstantsFolded;
        Changed = LocalChanged = true;
      }
    }
  }
  return Changed;
}

bool ompgpu::removeDeadInstructions(Function &F) {
  if (F.isDeclaration())
    return false;
  bool Changed = false;
  bool LocalChanged = true;
  while (LocalChanged) {
    LocalChanged = false;
    for (BasicBlock *BB : F) {
      std::vector<Instruction *> Insts = BB->getInstructions();
      for (auto It = Insts.rbegin(), E = Insts.rend(); It != E; ++It) {
        Instruction *I = *It;
        if (I->isTerminator() || I->hasUses())
          continue;
        if (I->mayHaveSideEffects())
          continue;
        I->eraseFromParent();
        ++NumDeadInstsRemoved;
        Changed = LocalChanged = true;
      }
    }
  }
  return Changed;
}

/// Deletes all blocks not reachable from the entry.
static bool removeUnreachableBlocks(Function &F) {
  std::set<BasicBlock *> Reachable;
  for (BasicBlock *BB : reversePostOrder(F))
    Reachable.insert(BB);

  std::vector<BasicBlock *> Dead;
  for (BasicBlock *BB : F)
    if (!Reachable.count(BB))
      Dead.push_back(BB);
  if (Dead.empty())
    return false;

  // Remove phi entries in reachable successors, then drop all operand
  // references held by dead instructions (including branch edges between
  // dead blocks).
  for (BasicBlock *BB : Dead)
    for (BasicBlock *Succ : BB->successors())
      if (Reachable.count(Succ))
        for (PhiInst *Phi : Succ->phis())
          Phi->removeIncomingBlock(BB);
  for (BasicBlock *BB : Dead)
    for (Instruction *I : *BB)
      I->dropAllOperands();
  for (BasicBlock *BB : Dead)
    F.eraseBlock(BB);
  return true;
}

/// Rewrites conditional branches on constants into unconditional ones.
static bool foldConstantBranches(Function &F) {
  IRContext &Ctx = F.getContext();
  bool Changed = false;
  for (BasicBlock *BB : F) {
    auto *Br = dyn_cast_or_null<BrInst>(BB->getTerminator());
    if (!Br || !Br->isConditional())
      continue;
    const auto *Cond = dyn_cast<ConstantInt>(Br->getCondition());
    if (!Cond)
      continue;
    BasicBlock *Taken = Br->getSuccessor(Cond->isZero() ? 1 : 0);
    BasicBlock *NotTaken = Br->getSuccessor(Cond->isZero() ? 0 : 1);
    if (NotTaken != Taken)
      for (PhiInst *Phi : NotTaken->phis())
        Phi->removeIncomingBlock(BB);
    std::string Anchor = Br->hasAnchor() ? Br->getAnchor() : std::string();
    Br->eraseFromParent();
    IRBuilder B(Ctx);
    B.setInsertPoint(BB);
    Instruction *NewBr = B.createBr(Taken);
    if (!Anchor.empty())
      NewBr->setAnchor(std::move(Anchor));
    Changed = true;
  }
  return Changed;
}

/// Merges a block into its unique predecessor when control flow is trivial.
static bool mergeBlocks(Function &F) {
  bool Changed = false;
  bool LocalChanged = true;
  while (LocalChanged) {
    LocalChanged = false;
    for (BasicBlock *BB : F.getBlocks()) {
      if (BB == F.getEntryBlock())
        continue;
      std::vector<BasicBlock *> Preds = BB->predecessors();
      if (Preds.size() != 1)
        continue;
      BasicBlock *Pred = Preds[0];
      if (Pred == BB)
        continue;
      auto *PredBr = dyn_cast_or_null<BrInst>(Pred->getTerminator());
      if (!PredBr || PredBr->isConditional())
        continue;
      assert(PredBr->getSuccessor(0) == BB && "CFG inconsistency");

      // Phi nodes in BB have exactly one incoming value now.
      for (PhiInst *Phi : BB->phis()) {
        assert(Phi->getNumIncoming() == 1 && "phi with single predecessor");
        Value *In = Phi->getIncomingValue(0);
        Phi->replaceAllUsesWith(In);
        Phi->eraseFromParent();
      }

      // Successor phis referencing BB must be retargeted to Pred before
      // BB disappears.
      for (BasicBlock *Succ : BB->successors())
        for (PhiInst *Phi : Succ->phis())
          for (unsigned I = 0, E = Phi->getNumIncoming(); I != E; ++I)
            if (Phi->getIncomingBlock(I) == BB)
              Phi->setOperand(2 * I + 1, Pred);

      // The merged-in instructions execute exactly as often as the erased
      // branch did, so its profiling anchor survives on the first one that
      // has no anchor of its own (docs/pgo.md).
      std::string Anchor =
          PredBr->hasAnchor() ? PredBr->getAnchor() : std::string();
      PredBr->eraseFromParent();
      for (Instruction *I : BB->getInstructions()) {
        std::unique_ptr<Instruction> Owned = BB->remove(I);
        if (!Anchor.empty() && !Owned->hasAnchor())
          Owned->setAnchor(std::exchange(Anchor, std::string()));
        Pred->push_back(Owned.release());
      }
      assert(!BB->hasUses() && "merged block still referenced");
      F.eraseBlock(BB);
      Changed = LocalChanged = true;
      break; // block list changed; restart scan
    }
  }
  return Changed;
}

bool ompgpu::simplifyCFG(Function &F) {
  if (F.isDeclaration())
    return false;
  bool Changed = false;
  Changed |= foldConstantBranches(F);
  Changed |= removeUnreachableBlocks(F);
  Changed |= mergeBlocks(F);
  return Changed;
}

bool ompgpu::simplifyFunction(Function &F) {
  if (F.isDeclaration())
    return false;
  bool Changed = false;
  bool LocalChanged = true;
  while (LocalChanged) {
    LocalChanged = false;
    LocalChanged |= foldConstants(F);
    LocalChanged |= removeDeadInstructions(F);
    LocalChanged |= simplifyCFG(F);
    Changed |= LocalChanged;
  }
  return Changed;
}

bool ompgpu::simplifyModule(Module &M) {
  bool Changed = false;
  for (Function *F : M.functions())
    Changed |= simplifyFunction(*F);
  return Changed;
}
