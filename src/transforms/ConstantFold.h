//===- transforms/ConstantFold.h - Instruction constant folding -*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constant folding of individual instructions. Runtime-call folding
/// (Sec. IV-C) replaces calls with constants; this folder then propagates
/// them through arithmetic, comparisons, and branches.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_TRANSFORMS_CONSTANTFOLD_H
#define OMPGPU_TRANSFORMS_CONSTANTFOLD_H

namespace ompgpu {

class Constant;
class IRContext;
class Instruction;

/// Attempts to fold \p I to a constant. Returns null if the instruction
/// does not fold (non-constant operands or unsupported opcode).
Constant *constantFoldInstruction(const Instruction *I, IRContext &Ctx);

} // namespace ompgpu

#endif // OMPGPU_TRANSFORMS_CONSTANTFOLD_H
