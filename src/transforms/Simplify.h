//===- transforms/Simplify.h - Constprop, DCE, CFG cleanup ------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generic scalar cleanup pipeline that follows the OpenMP-specific
/// transformations: constant propagation, dead code elimination, and CFG
/// simplification. After runtime-call folding (Sec. IV-C) these passes
/// delete the dead generic-mode fallback paths.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_TRANSFORMS_SIMPLIFY_H
#define OMPGPU_TRANSFORMS_SIMPLIFY_H

namespace ompgpu {

class Function;
class Module;

/// Replaces constant-foldable instructions by constants. Returns true if
/// anything changed.
bool foldConstants(Function &F);

/// Removes side-effect-free instructions without uses. Returns true if
/// anything changed.
bool removeDeadInstructions(Function &F);

/// Folds constant conditional branches, deletes unreachable blocks, and
/// merges trivial straight-line block chains. Returns true if changed.
bool simplifyCFG(Function &F);

/// Runs fold/DCE/CFG-simplify to a fixed point. Returns true if changed.
bool simplifyFunction(Function &F);

/// Runs simplifyFunction over every definition in \p M.
bool simplifyModule(Module &M);

/// Stable pipeline name of simplifyModule (pass instrumentation).
inline constexpr const char SimplifyPassName[] = "simplify";

} // namespace ompgpu

#endif // OMPGPU_TRANSFORMS_SIMPLIFY_H
