//===- transforms/Inliner.cpp - Parallel-region inlining -------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "transforms/Inliner.h"
#include "ir/IRBuilder.h"
#include "ir/Module.h"
#include "support/STLExtras.h"
#include "support/Statistic.h"

#include <map>

using namespace ompgpu;

#define DEBUG_TYPE "inline"
OMPGPU_STATISTIC(NumCallSitesInlined, "Parallel-region call sites inlined");

bool ompgpu::inlineCallSite(CallInst *CI) {
  Function *Callee = CI->getCalledFunction();
  Function *Caller = CI->getFunction();
  if (!Callee || Callee->isDeclaration() || !Caller || Callee == Caller)
    return false;

  IRContext &Ctx = Caller->getContext();
  BasicBlock *CallBB = CI->getParent();

  // Split so the call leads its own block; everything after it becomes the
  // continuation.
  BasicBlock *SplitBB = CallBB->splitBefore(CI, "inline.cont");
  // CallBB now ends with `br SplitBB`; the call is SplitBB's first
  // instruction.

  // Clone the callee body.
  std::map<const Value *, Value *> VMap;
  for (unsigned I = 0, E = Callee->arg_size(); I != E; ++I)
    VMap[Callee->getArg(I)] = CI->getArgOperand(I);

  std::vector<BasicBlock *> NewBlocks;
  for (BasicBlock *BB : *Callee) {
    BasicBlock *NewBB =
        Caller->createBlock(Callee->getName() + "." + BB->getName());
    VMap[BB] = NewBB;
    NewBlocks.push_back(NewBB);
    for (Instruction *I : *BB) {
      Instruction *NewI = I->clone();
      NewI->setName(I->getName());
      NewBB->push_back(NewI);
      VMap[I] = NewI;
    }
  }
  for (BasicBlock *BB : NewBlocks)
    for (Instruction *I : *BB)
      for (unsigned Op = 0, E = I->getNumOperands(); Op != E; ++Op) {
        auto It = VMap.find(I->getOperand(Op));
        if (It != VMap.end())
          I->setOperand(Op, It->second);
      }

  // Rewrite the clone's returns into branches to the continuation and
  // collect the return values.
  BasicBlock *InlinedEntry = cast<BasicBlock>(VMap.at(
      Callee->getEntryBlock()));
  std::vector<std::pair<Value *, BasicBlock *>> RetVals;
  for (BasicBlock *BB : NewBlocks) {
    auto *Ret = dyn_cast_or_null<RetInst>(BB->getTerminator());
    if (!Ret)
      continue;
    Value *RV = Ret->getReturnValue();
    Ret->eraseFromParent();
    IRBuilder B(Ctx);
    B.setInsertPoint(BB);
    B.createBr(SplitBB);
    RetVals.push_back({RV, BB});
  }

  // Retarget the fallthrough into the inlined entry.
  Instruction *Fallthrough = CallBB->getTerminator();
  assert(isa<BrInst>(Fallthrough));
  Fallthrough->eraseFromParent();
  {
    IRBuilder B(Ctx);
    B.setInsertPoint(CallBB);
    Instruction *EntryBr = B.createBr(InlinedEntry);
    // This branch runs exactly once per inlined invocation: it inherits
    // the call's profiling anchor so dispatch counts survive flattening
    // (docs/pgo.md).
    if (CI->hasAnchor())
      EntryBr->setAnchor(CI->getAnchor());
  }

  // Hoist statically sized allocas of the inlined body into the caller's
  // entry block so loops around the call site do not grow the stack
  // (mirroring llvm::InlineFunction).
  BasicBlock *Entry = Caller->getEntryBlock();
  for (BasicBlock *BB : NewBlocks)
    for (Instruction *I : BB->getInstructions())
      if (isa<AllocaInst>(I) && BB != Entry)
        I->moveBefore(Entry->front());

  // Wire up the return value and drop the call.
  if (!CI->getType()->isVoidTy()) {
    Value *Result = nullptr;
    if (RetVals.size() == 1) {
      Result = RetVals.front().first;
    } else if (!RetVals.empty()) {
      auto *Phi = new PhiInst(CI->getType());
      Phi->setName(Callee->getName() + ".retval");
      SplitBB->insertBefore(Phi, SplitBB->front());
      for (auto &[V, BB] : RetVals)
        Phi->addIncoming(V, BB);
      Result = Phi;
    } else {
      Result = Ctx.getUndef(CI->getType()); // no returns: unreachable path
    }
    CI->replaceAllUsesWith(Result);
  }
  CI->eraseFromParent();
  return true;
}

namespace {

/// Policy: flatten outlined parallel regions and the thin runtime entry
/// points the optimizations devirtualized.
bool shouldInline(const Function *Callee) {
  if (!Callee || Callee->isDeclaration())
    return false;
  const std::string &N = Callee->getName();
  if (N.find("_wrapper") != std::string::npos &&
      Callee->hasInternalLinkage())
    return true;
  return N == "__kmpc_parallel_51" || N == "__kmpc_target_deinit";
}

} // namespace

bool ompgpu::inlineParallelRegions(Module &M) {
  bool Changed = false;
  bool LocalChanged = true;
  unsigned Budget = 256; // safety bound against pathological growth
  while (LocalChanged && Budget) {
    LocalChanged = false;
    for (Function *F : M.functions()) {
      if (shouldInline(F))
        continue; // don't inline into bodies that will disappear anyway
      for (BasicBlock *BB : F->getBlocks()) {
        for (Instruction *I : BB->getInstructions()) {
          auto *CI = dyn_cast<CallInst>(I);
          if (!CI || !shouldInline(CI->getCalledFunction()))
            continue;
          if (inlineCallSite(CI)) {
            ++NumCallSitesInlined;
            Changed = LocalChanged = true;
            --Budget;
            break; // block structure changed; rescan the function
          }
        }
        if (LocalChanged)
          break;
      }
    }
  }
  return Changed;
}
