//===- transforms/StoreToLoadForwarding.cpp - Local S2L fwd ----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "transforms/StoreToLoadForwarding.h"
#include "ir/Module.h"

#include <map>

using namespace ompgpu;

bool ompgpu::forwardStoresToLoads(Function &F) {
  if (F.isDeclaration())
    return false;
  bool Changed = false;
  for (BasicBlock *BB : F) {
    // Available values per (pointer, accessed type) pair.
    std::map<std::pair<const Value *, const Type *>, Value *> Avail;
    for (Instruction *I : BB->getInstructions()) {
      if (auto *SI = dyn_cast<StoreInst>(I)) {
        Avail.clear(); // conservative: a store may alias everything
        Avail[{SI->getPointerOperand(), SI->getAccessType()}] =
            SI->getValueOperand();
        continue;
      }
      if (auto *LI = dyn_cast<LoadInst>(I)) {
        auto It = Avail.find({LI->getPointerOperand(), LI->getType()});
        if (It == Avail.end()) {
          Avail[{LI->getPointerOperand(), LI->getType()}] = LI;
          continue;
        }
        LI->replaceAllUsesWith(It->second);
        LI->eraseFromParent();
        Changed = true;
        continue;
      }
      if (I->mayWriteToMemory() || I->mayHaveSideEffects())
        Avail.clear();
    }
  }
  return Changed;
}

bool ompgpu::forwardStoresToLoads(Module &M) {
  bool Changed = false;
  for (Function *F : M.functions())
    Changed |= forwardStoresToLoads(*F);
  return Changed;
}
