//===- transforms/FunctionAttrs.cpp - Attribute inference ------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "transforms/FunctionAttrs.h"
#include "analysis/CFG.h"
#include "analysis/CallGraph.h"
#include "ir/Module.h"

using namespace ompgpu;

namespace {

/// Per-function summary computed during one SCC iteration.
struct Effects {
  bool Reads = false;
  bool Writes = false;
  bool Syncs = false;
  bool MayNotReturn = false;
};

/// Scans a function body, consulting current attributes of callees. SCC
/// members are handled by iterating to a fixed point (attributes only ever
/// get removed from the optimistic assumption).
Effects scanFunction(const Function &F) {
  Effects E;
  for (const BasicBlock *BB : F) {
    for (const Instruction *I : *BB) {
      switch (I->getOpcode()) {
      case ValueKind::Load:
        E.Reads = true;
        break;
      case ValueKind::Store:
        E.Writes = true;
        break;
      case ValueKind::AtomicRMW:
        E.Reads = E.Writes = E.Syncs = true;
        break;
      case ValueKind::Call: {
        const auto *CI = cast<CallInst>(I);
        const Function *Callee = CI->getCalledFunction();
        if (!Callee) {
          E.Reads = E.Writes = E.Syncs = E.MayNotReturn = true;
          break;
        }
        if (!Callee->hasFnAttr(FnAttr::ReadNone)) {
          E.Reads = true;
          if (!Callee->hasFnAttr(FnAttr::ReadOnly))
            E.Writes = true;
        }
        if (!Callee->hasFnAttr(FnAttr::NoSync))
          E.Syncs = true;
        if (!Callee->hasFnAttr(FnAttr::WillReturn))
          E.MayNotReturn = true;
        break;
      }
      default:
        break;
      }
    }
  }
  return E;
}

} // namespace

bool ompgpu::inferFunctionAttrs(Module &M) {
  CallGraph CG(M);
  bool AnyAdded = false;

  for (const std::vector<Function *> &SCC : CG.sccsBottomUp()) {
    // Optimistically assume the strongest attributes within the SCC, then
    // iterate until stable.
    for (Function *F : SCC) {
      if (F->isDeclaration())
        continue;
      F->addFnAttr(FnAttr::ReadNone);
      F->addFnAttr(FnAttr::ReadOnly);
      F->addFnAttr(FnAttr::NoSync);
      F->addFnAttr(FnAttr::WillReturn);
    }

    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (Function *F : SCC) {
        if (F->isDeclaration())
          continue;
        Effects E = scanFunction(*F);
        auto Drop = [&](FnAttr A, bool Cond) {
          if (Cond && F->hasFnAttr(A)) {
            F->removeFnAttr(A);
            Changed = true;
          }
        };
        Drop(FnAttr::ReadNone, E.Reads || E.Writes);
        Drop(FnAttr::ReadOnly, E.Writes);
        Drop(FnAttr::NoSync, E.Syncs);
        Drop(FnAttr::WillReturn, E.MayNotReturn);
      }
    }
    for (Function *F : SCC)
      if (!F->isDeclaration() &&
          (F->hasFnAttr(FnAttr::ReadNone) || F->hasFnAttr(FnAttr::ReadOnly) ||
           F->hasFnAttr(FnAttr::NoSync)))
        AnyAdded = true;
  }
  return AnyAdded;
}
