//===- transforms/ConstantFold.cpp - Instruction constant folding ----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "transforms/ConstantFold.h"
#include "ir/IRContext.h"
#include "ir/Instruction.h"
#include "support/ErrorHandling.h"

#include <cmath>

using namespace ompgpu;

namespace {

/// Reads an integer constant respecting the type's width.
bool getIntOperand(const Value *V, int64_t &Out) {
  const auto *CI = dyn_cast<ConstantInt>(V);
  if (!CI)
    return false;
  Out = CI->getValue();
  return true;
}

bool getFPOperand(const Value *V, double &Out) {
  const auto *CF = dyn_cast<ConstantFP>(V);
  if (!CF)
    return false;
  Out = CF->getValue();
  return true;
}

Constant *foldBinOp(const BinOpInst *BO, IRContext &Ctx) {
  Type *Ty = BO->getType();
  if (Ty->isIntegerTy()) {
    int64_t L, R;
    if (!getIntOperand(BO->getLHS(), L) || !getIntOperand(BO->getRHS(), R))
      return nullptr;
    int64_t Res;
    switch (BO->getBinaryOp()) {
    case BinaryOp::Add:
      Res = (int64_t)((uint64_t)L + (uint64_t)R);
      break;
    case BinaryOp::Sub:
      Res = (int64_t)((uint64_t)L - (uint64_t)R);
      break;
    case BinaryOp::Mul:
      Res = (int64_t)((uint64_t)L * (uint64_t)R);
      break;
    case BinaryOp::SDiv:
      if (R == 0)
        return nullptr;
      Res = L / R;
      break;
    case BinaryOp::UDiv:
      if (R == 0)
        return nullptr;
      Res = (int64_t)((uint64_t)L / (uint64_t)R);
      break;
    case BinaryOp::SRem:
      if (R == 0)
        return nullptr;
      Res = L % R;
      break;
    case BinaryOp::URem:
      if (R == 0)
        return nullptr;
      Res = (int64_t)((uint64_t)L % (uint64_t)R);
      break;
    case BinaryOp::And:
      Res = L & R;
      break;
    case BinaryOp::Or:
      Res = L | R;
      break;
    case BinaryOp::Xor:
      Res = L ^ R;
      break;
    case BinaryOp::Shl:
      Res = (int64_t)((uint64_t)L << (R & 63));
      break;
    case BinaryOp::LShr:
      Res = (int64_t)((uint64_t)L >> (R & 63));
      break;
    case BinaryOp::AShr:
      Res = L >> (R & 63);
      break;
    default:
      return nullptr;
    }
    return Ctx.getConstantInt(Ty, Res);
  }

  if (Ty->isFloatingPointTy()) {
    double L, R;
    if (!getFPOperand(BO->getLHS(), L) || !getFPOperand(BO->getRHS(), R))
      return nullptr;
    double Res;
    switch (BO->getBinaryOp()) {
    case BinaryOp::FAdd:
      Res = L + R;
      break;
    case BinaryOp::FSub:
      Res = L - R;
      break;
    case BinaryOp::FMul:
      Res = L * R;
      break;
    case BinaryOp::FDiv:
      Res = L / R;
      break;
    default:
      return nullptr;
    }
    return Ctx.getConstantFP(Ty, Res);
  }
  return nullptr;
}

Constant *foldICmp(const ICmpInst *IC, IRContext &Ctx) {
  int64_t L, R;
  if (!getIntOperand(IC->getLHS(), L) || !getIntOperand(IC->getRHS(), R))
    return nullptr;
  bool Res = false;
  auto UL = (uint64_t)L, UR = (uint64_t)R;
  switch (IC->getPredicate()) {
  case ICmpPred::EQ:
    Res = L == R;
    break;
  case ICmpPred::NE:
    Res = L != R;
    break;
  case ICmpPred::SLT:
    Res = L < R;
    break;
  case ICmpPred::SLE:
    Res = L <= R;
    break;
  case ICmpPred::SGT:
    Res = L > R;
    break;
  case ICmpPred::SGE:
    Res = L >= R;
    break;
  case ICmpPred::ULT:
    Res = UL < UR;
    break;
  case ICmpPred::ULE:
    Res = UL <= UR;
    break;
  case ICmpPred::UGT:
    Res = UL > UR;
    break;
  case ICmpPred::UGE:
    Res = UL >= UR;
    break;
  }
  return Ctx.getInt1(Res);
}

Constant *foldFCmp(const FCmpInst *FC, IRContext &Ctx) {
  double L, R;
  if (!getFPOperand(FC->getLHS(), L) || !getFPOperand(FC->getRHS(), R))
    return nullptr;
  bool Res = false;
  switch (FC->getPredicate()) {
  case FCmpPred::OEQ:
    Res = L == R;
    break;
  case FCmpPred::ONE:
    Res = L != R;
    break;
  case FCmpPred::OLT:
    Res = L < R;
    break;
  case FCmpPred::OLE:
    Res = L <= R;
    break;
  case FCmpPred::OGT:
    Res = L > R;
    break;
  case FCmpPred::OGE:
    Res = L >= R;
    break;
  }
  return Ctx.getInt1(Res);
}

Constant *foldCast(const CastInst *C, IRContext &Ctx) {
  Type *DstTy = C->getType();
  const Value *Src = C->getSrc();
  switch (C->getCastOp()) {
  case CastOp::Trunc:
  case CastOp::ZExt: {
    int64_t V;
    if (!getIntOperand(Src, V))
      return nullptr;
    if (C->getCastOp() == CastOp::ZExt) {
      unsigned SrcBits = Src->getType()->getIntegerBitWidth();
      if (SrcBits < 64)
        V &= (int64_t)((1ULL << SrcBits) - 1);
    }
    return Ctx.getConstantInt(DstTy, V);
  }
  case CastOp::SExt: {
    int64_t V;
    if (!getIntOperand(Src, V))
      return nullptr;
    return Ctx.getConstantInt(DstTy, V);
  }
  case CastOp::SIToFP: {
    int64_t V;
    if (!getIntOperand(Src, V))
      return nullptr;
    return Ctx.getConstantFP(DstTy, (double)V);
  }
  case CastOp::UIToFP: {
    int64_t V;
    if (!getIntOperand(Src, V))
      return nullptr;
    return Ctx.getConstantFP(DstTy, (double)(uint64_t)V);
  }
  case CastOp::FPToSI: {
    double V;
    if (!getFPOperand(Src, V))
      return nullptr;
    return Ctx.getConstantInt(DstTy, (int64_t)V);
  }
  case CastOp::FPTrunc:
  case CastOp::FPExt: {
    double V;
    if (!getFPOperand(Src, V))
      return nullptr;
    return Ctx.getConstantFP(DstTy, V);
  }
  default:
    return nullptr;
  }
}

Constant *foldMath(const MathInst *M, IRContext &Ctx) {
  double A = 0, B = 0;
  if (!getFPOperand(M->getOperand(0), A))
    return nullptr;
  if (M->getNumOperands() > 1 && !getFPOperand(M->getOperand(1), B))
    return nullptr;
  double Res = 0;
  switch (M->getMathOp()) {
  case MathOp::Sqrt:
    Res = std::sqrt(A);
    break;
  case MathOp::Sin:
    Res = std::sin(A);
    break;
  case MathOp::Cos:
    Res = std::cos(A);
    break;
  case MathOp::Exp:
    Res = std::exp(A);
    break;
  case MathOp::Log:
    Res = std::log(A);
    break;
  case MathOp::Fabs:
    Res = std::fabs(A);
    break;
  case MathOp::Floor:
    Res = std::floor(A);
    break;
  case MathOp::Pow:
    Res = std::pow(A, B);
    break;
  case MathOp::FMin:
    Res = std::fmin(A, B);
    break;
  case MathOp::FMax:
    Res = std::fmax(A, B);
    break;
  }
  return Ctx.getConstantFP(M->getType(), Res);
}

} // namespace

Constant *ompgpu::constantFoldInstruction(const Instruction *I,
                                          IRContext &Ctx) {
  switch (I->getOpcode()) {
  case ValueKind::BinOp:
    return foldBinOp(cast<BinOpInst>(I), Ctx);
  case ValueKind::ICmp:
    return foldICmp(cast<ICmpInst>(I), Ctx);
  case ValueKind::FCmp:
    return foldFCmp(cast<FCmpInst>(I), Ctx);
  case ValueKind::Cast:
    return foldCast(cast<CastInst>(I), Ctx);
  case ValueKind::Math:
    return foldMath(cast<MathInst>(I), Ctx);
  case ValueKind::Select: {
    const auto *S = cast<SelectInst>(I);
    const auto *C = dyn_cast<ConstantInt>(S->getCondition());
    if (!C)
      return nullptr;
    Value *Arm = C->isZero() ? S->getFalseValue() : S->getTrueValue();
    return dyn_cast<Constant>(Arm);
  }
  case ValueKind::Phi: {
    // A phi whose incoming values are all the same constant folds to it.
    const auto *P = cast<PhiInst>(I);
    if (P->getNumIncoming() == 0)
      return nullptr;
    auto *First = dyn_cast<Constant>(P->getIncomingValue(0));
    if (!First)
      return nullptr;
    for (unsigned Idx = 1, E = P->getNumIncoming(); Idx != E; ++Idx)
      if (P->getIncomingValue(Idx) != First)
        return nullptr;
    return First;
  }
  default:
    return nullptr;
  }
}
