//===- transforms/StoreToLoadForwarding.h - Local S2L fwd -------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local store-to-load forwarding. Sec. IV-A notes that replacing
/// runtime globalization with static shared memory "allows further memory
/// optimizations, e.g., store-to-load-forwarding, as the lifetime and exact
/// location are known to the compiler" — this pass provides exactly that
/// follow-up optimization.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_TRANSFORMS_STORETOLOADFORWARDING_H
#define OMPGPU_TRANSFORMS_STORETOLOADFORWARDING_H

namespace ompgpu {

class Function;
class Module;

/// Forwards stored values to later loads of the same pointer within a
/// block when no intervening instruction may write or synchronize.
/// Returns true if changed.
bool forwardStoresToLoads(Function &F);

/// Runs forwarding over every definition in \p M.
bool forwardStoresToLoads(Module &M);

/// Stable pipeline name of forwardStoresToLoads (pass instrumentation).
inline constexpr const char StoreToLoadForwardingPassName[] =
    "store-to-load-forwarding";

} // namespace ompgpu

#endif // OMPGPU_TRANSFORMS_STORETOLOADFORWARDING_H
