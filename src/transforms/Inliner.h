//===- transforms/Inliner.h - Parallel-region inlining ----------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Call-site inlining. The paper's pass deliberately performs no inlining
/// itself ("the inliner heuristic ... should be in charge of inlining
/// decisions"), but its transformations *enable* the regular inliner: once
/// SPMDzation or the custom state machine make the parallel-region callee
/// a compile-time constant, the standard pipeline inlines the region and
/// the outlining overhead disappears. This is that inliner: it flattens
/// direct calls to outlined parallel-region wrappers and to the linked
/// device-runtime entry points.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_TRANSFORMS_INLINER_H
#define OMPGPU_TRANSFORMS_INLINER_H

namespace ompgpu {

class CallInst;
class Module;

/// Inlines \p CI (a direct call to a defined function). Returns false and
/// leaves the IR unchanged when the site is not inlinable (indirect,
/// declaration-only callee, or recursion).
bool inlineCallSite(CallInst *CI);

/// Runs the parallel-region inlining policy over \p M: direct calls to
/// internal `*_wrapper` outlined regions and to the small runtime entry
/// points (__kmpc_parallel_51, __kmpc_target_deinit) are flattened until
/// a fixed point. Returns true if anything was inlined.
bool inlineParallelRegions(Module &M);

/// Stable pipeline name of inlineParallelRegions (pass instrumentation).
inline constexpr const char InlineParallelRegionsPassName[] =
    "inline-parallel-regions";

} // namespace ompgpu

#endif // OMPGPU_TRANSFORMS_INLINER_H
