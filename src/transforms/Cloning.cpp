//===- transforms/Cloning.cpp - Function cloning ---------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "transforms/Cloning.h"
#include "ir/Module.h"

#include <map>

using namespace ompgpu;

/// Copies attributes, assumptions, kernel metadata, and argument attributes
/// from \p From to \p To, mapping each old argument in \p VMap.
static void copyFunctionMetadata(const Function &From, Function &To,
                                 std::map<const Value *, Value *> &VMap) {
  for (FnAttr A : From.attrs())
    To.addFnAttr(A);
  for (const std::string &A : From.assumptions())
    To.addAssumption(A);
  To.setKernel(From.isKernel());
  To.getKernelEnvironment() = From.getKernelEnvironment();

  for (unsigned I = 0, E = From.arg_size(); I != E; ++I) {
    Argument *OldArg = From.getArg(I);
    Argument *NewArg = To.getArg(I);
    NewArg->setName(OldArg->getName());
    NewArg->setNoEscapeAttr(OldArg->hasNoEscapeAttr());
    VMap[OldArg] = NewArg;
  }
}

/// Creates blocks and shallow instruction clones of \p From's body in
/// \p To, recording every block and instruction in \p VMap. Operands still
/// reference the originals until remapOperands runs.
static void cloneBodyInto(const Function &From, Function &To,
                          std::map<const Value *, Value *> &VMap) {
  for (BasicBlock *BB : From) {
    BasicBlock *NewBB = To.createBlock(BB->getName());
    VMap[BB] = NewBB;
    for (Instruction *I : *BB) {
      Instruction *NewI = I->clone();
      NewI->setName(I->getName());
      NewBB->push_back(NewI);
      VMap[I] = NewI;
    }
  }
}

/// Rewrites every operand of every instruction in \p F that \p VMap maps.
static void remapOperands(Function &F,
                          const std::map<const Value *, Value *> &VMap) {
  for (BasicBlock *BB : F)
    for (Instruction *I : *BB)
      for (unsigned OpIdx = 0, E = I->getNumOperands(); OpIdx != E; ++OpIdx) {
        auto It = VMap.find(I->getOperand(OpIdx));
        if (It != VMap.end())
          I->setOperand(OpIdx, It->second);
      }
}

Function *ompgpu::cloneFunction(Function &F, const std::string &NewName) {
  assert(!F.isDeclaration() && "cannot clone a declaration");
  Module &M = *F.getParent();
  Function *NewF =
      M.createFunction(NewName, F.getFunctionType(), Linkage::Internal);

  std::map<const Value *, Value *> VMap;
  copyFunctionMetadata(F, *NewF, VMap);
  cloneBodyInto(F, *NewF, VMap);
  remapOperands(*NewF, VMap);
  return NewF;
}

std::unique_ptr<Module> ompgpu::cloneModule(const Module &M) {
  auto New = std::make_unique<Module>(M.getContext(), M.getName());
  std::map<const Value *, Value *> VMap;

  // Globals first: initializers are context-owned constants shared between
  // modules, so they carry over without remapping.
  for (GlobalVariable *G : M.globals()) {
    GlobalVariable *NewG = New->createGlobal(
        G->getValueType(), G->getAddressSpace(), G->getName(),
        G->getInitializer());
    NewG->setLinkage(G->getLinkage());
    NewG->setAnchor(G->getAnchor());
    VMap[G] = NewG;
  }

  // Function shells next (declarations included) so calls and address-taken
  // uses in any body can remap to the new functions.
  for (Function *F : M.functions()) {
    Function *NewF =
        New->createFunction(F->getName(), F->getFunctionType(),
                            F->getLinkage());
    copyFunctionMetadata(*F, *NewF, VMap);
    VMap[F] = NewF;
  }

  // Bodies, then one remap pass over everything.
  for (Function *F : M.functions())
    if (!F->isDeclaration())
      cloneBodyInto(*F, *cast<Function>(VMap[F]), VMap);
  for (Function *F : New->functions())
    remapOperands(*F, VMap);

  return New;
}
