//===- transforms/Cloning.cpp - Function cloning ---------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "transforms/Cloning.h"
#include "ir/Module.h"

#include <map>

using namespace ompgpu;

Function *ompgpu::cloneFunction(Function &F, const std::string &NewName) {
  assert(!F.isDeclaration() && "cannot clone a declaration");
  Module &M = *F.getParent();
  Function *NewF =
      M.createFunction(NewName, F.getFunctionType(), Linkage::Internal);

  for (FnAttr A : F.attrs())
    NewF->addFnAttr(A);
  for (const std::string &A : F.assumptions())
    NewF->addAssumption(A);
  NewF->setKernel(F.isKernel());
  NewF->getKernelEnvironment() = F.getKernelEnvironment();

  std::map<const Value *, Value *> VMap;
  for (unsigned I = 0, E = F.arg_size(); I != E; ++I) {
    Argument *OldArg = F.getArg(I);
    Argument *NewArg = NewF->getArg(I);
    NewArg->setName(OldArg->getName());
    NewArg->setNoEscapeAttr(OldArg->hasNoEscapeAttr());
    VMap[OldArg] = NewArg;
  }

  // First pass: create blocks and shallow instruction clones.
  for (BasicBlock *BB : F) {
    BasicBlock *NewBB = NewF->createBlock(BB->getName());
    VMap[BB] = NewBB;
    for (Instruction *I : *BB) {
      Instruction *NewI = I->clone();
      NewI->setName(I->getName());
      NewBB->push_back(NewI);
      VMap[I] = NewI;
    }
  }

  // Second pass: remap operands that refer to cloned values.
  for (BasicBlock *BB : *NewF)
    for (Instruction *I : *BB)
      for (unsigned OpIdx = 0, E = I->getNumOperands(); OpIdx != E; ++OpIdx) {
        auto It = VMap.find(I->getOperand(OpIdx));
        if (It != VMap.end())
          I->setOperand(OpIdx, It->second);
      }

  return NewF;
}
