//===- transforms/Cloning.h - Function cloning ------------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep function cloning with value remapping, used by the aggressive
/// internalization step of the paper's pass (Sec. IV): externally visible
/// device functions are duplicated into internal copies so the
/// inter-procedural analyses see every call site.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_TRANSFORMS_CLONING_H
#define OMPGPU_TRANSFORMS_CLONING_H

#include <memory>
#include <string>

namespace ompgpu {

class Function;
class Module;

/// Clones the definition of \p F into a new function named \p NewName
/// (made unique) in the same module. Attributes, assumptions, and argument
/// attributes are copied; linkage of the clone is Internal.
Function *cloneFunction(Function &F, const std::string &NewName);

/// Deep-clones \p M — every global, every function (declarations included)
/// with attributes, assumptions, linkage, and kernel metadata, and every
/// instruction with cross-function references remapped — into a fresh
/// module in the same IRContext. This is the whole-module snapshot behind
/// recoverable compilation: before each pass the driver clones the module,
/// and a misbehaving pass is undone with Module::clear() +
/// Module::takeContentsFrom(*Snapshot).
std::unique_ptr<Module> cloneModule(const Module &M);

} // namespace ompgpu

#endif // OMPGPU_TRANSFORMS_CLONING_H
