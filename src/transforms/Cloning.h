//===- transforms/Cloning.h - Function cloning ------------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep function cloning with value remapping, used by the aggressive
/// internalization step of the paper's pass (Sec. IV): externally visible
/// device functions are duplicated into internal copies so the
/// inter-procedural analyses see every call site.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_TRANSFORMS_CLONING_H
#define OMPGPU_TRANSFORMS_CLONING_H

#include <string>

namespace ompgpu {

class Function;
class Module;

/// Clones the definition of \p F into a new function named \p NewName
/// (made unique) in the same module. Attributes, assumptions, and argument
/// attributes are copied; linkage of the clone is Internal.
Function *cloneFunction(Function &F, const std::string &NewName);

} // namespace ompgpu

#endif // OMPGPU_TRANSFORMS_CLONING_H
