//===- transforms/Mem2Reg.cpp - Alloca promotion to SSA --------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "transforms/Mem2Reg.h"
#include "support/raw_ostream.h"
#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "ir/IRContext.h"
#include "ir/Module.h"
#include "support/STLExtras.h"
#include "support/Statistic.h"

#include <map>
#include <set>

using namespace ompgpu;

#define DEBUG_TYPE "mem2reg"
OMPGPU_STATISTIC(NumAllocasPromoted, "Allocas promoted to SSA registers");

bool ompgpu::isAllocaPromotable(const AllocaInst *AI) {
  Type *Ty = AI->getAllocatedType();
  // Aggregates accessed via GEPs are not promoted by this simple pass.
  if (Ty->isArrayTy() || Ty->isStructTy())
    return false;
  for (const User *U : AI->users()) {
    if (const auto *LI = dyn_cast<LoadInst>(U)) {
      if (LI->getType() != Ty)
        return false;
      continue;
    }
    if (const auto *SI = dyn_cast<StoreInst>(U)) {
      if (SI->getValueOperand() == AI) // address escapes into memory
        return false;
      if (SI->getValueOperand()->getType() != Ty)
        return false;
      continue;
    }
    return false; // GEP, call, cast, ... -> not promotable
  }
  return true;
}

namespace {

/// SSA construction for one function: dominance frontiers + renaming.
class Promoter {
  Function &F;
  DominatorTree DT;
  std::map<const BasicBlock *, std::vector<BasicBlock *>> DomChildren;
  std::map<const BasicBlock *, std::set<BasicBlock *>> Frontier;

public:
  explicit Promoter(Function &F) : F(F), DT(F) {
    for (BasicBlock *BB : F)
      if (const BasicBlock *IDom = DT.getIDom(BB))
        DomChildren[IDom].push_back(BB);
    computeFrontiers();
  }

  bool run() {
    // The renaming walk covers only blocks reachable from the entry; skip
    // allocas with uses in unreachable code (callers run CFG cleanup
    // first).
    std::set<const BasicBlock *> Reachable;
    for (BasicBlock *BB : reversePostOrder(F))
      Reachable.insert(BB);
    auto AllUsesReachable = [&](const AllocaInst *AI) {
      if (!Reachable.count(AI->getParent()))
        return false;
      for (const User *U : AI->users())
        if (!Reachable.count(cast<Instruction>(U)->getParent()))
          return false;
      return true;
    };

    std::vector<AllocaInst *> Promotable;
    for (BasicBlock *BB : F)
      for (Instruction *I : *BB)
        if (auto *AI = dyn_cast<AllocaInst>(I))
          if (isAllocaPromotable(AI) && AllUsesReachable(AI))
            Promotable.push_back(AI);
    for (AllocaInst *AI : Promotable) {
      promote(AI);
      ++NumAllocasPromoted;
    }
    return !Promotable.empty();
  }

private:
  void computeFrontiers() {
    for (BasicBlock *BB : F) {
      std::vector<BasicBlock *> Preds = BB->predecessors();
      if (Preds.size() < 2)
        continue;
      for (BasicBlock *P : Preds) {
        const BasicBlock *Runner = P;
        const BasicBlock *Stop = DT.getIDom(BB);
        while (Runner && Runner != Stop) {
          Frontier[Runner].insert(BB);
          Runner = DT.getIDom(Runner);
        }
      }
    }
  }

  void promote(AllocaInst *AI) {
    IRContext &Ctx = F.getContext();
    Type *Ty = AI->getAllocatedType();

    // Blocks containing stores define the value.
    std::set<BasicBlock *> DefBlocks;
    for (User *U : AI->users())
      if (auto *SI = dyn_cast<StoreInst>(U))
        DefBlocks.insert(SI->getParent());

    // Iterated dominance frontier -> phi placement.
    std::set<BasicBlock *> PhiBlocks;
    std::vector<BasicBlock *> Work(DefBlocks.begin(), DefBlocks.end());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      auto It = Frontier.find(BB);
      if (It == Frontier.end())
        continue;
      for (BasicBlock *FB : It->second)
        if (PhiBlocks.insert(FB).second)
          Work.push_back(FB);
    }

    std::map<BasicBlock *, PhiInst *> Phis;
    for (BasicBlock *BB : PhiBlocks) {
      auto *Phi = new PhiInst(Ty);
      Phi->setName(AI->getName().empty() ? "promoted"
                                         : AI->getName() + ".ssa");
      BB->insertBefore(Phi, BB->front());
      Phis[BB] = Phi;
    }

    // Renaming DFS over the dominator tree.
    std::vector<Value *> Stack;
    renameDFS(F.getEntryBlock(), AI, Ctx.getUndef(Ty), Phis, Stack);

    // Loads were rewritten during the walk; the remaining users are the
    // stores, which are now dead.
    std::vector<User *> Remaining = AI->users();
    for (User *U : Remaining) {
      auto *SI = dyn_cast<StoreInst>(U);
      if (SI && SI->getParent())
        SI->eraseFromParent();
    }
    if (AI->hasUses()) {
      for (User *U : AI->users())
        if (auto *UI = dyn_cast<Instruction>(U))
          errs() << "mem2reg: remaining user " << UI->getOpcodeName()
                 << " of %" << AI->getName() << " in block "
                 << (UI->getParent() ? UI->getParent()->getName()
                                     : std::string("<detached>"))
                 << '\n';
    }
    assert(!AI->hasUses() && "alloca still used after promotion");
    AI->eraseFromParent();
  }

  /// Depth-first rename walk. \p Stack holds the reaching definition.
  void renameDFS(BasicBlock *BB, AllocaInst *AI, Value *Default,
                 std::map<BasicBlock *, PhiInst *> &Phis,
                 std::vector<Value *> &Stack) {
    size_t SavedDepth = Stack.size();

    if (auto It = Phis.find(BB); It != Phis.end())
      Stack.push_back(It->second);

    for (Instruction *I : BB->getInstructions()) {
      if (auto *LI = dyn_cast<LoadInst>(I)) {
        if (LI->getPointerOperand() == AI) {
          Value *Reaching = Stack.empty() ? Default : Stack.back();
          LI->replaceAllUsesWith(Reaching);
          LI->eraseFromParent();
        }
        continue;
      }
      if (auto *SI = dyn_cast<StoreInst>(I)) {
        if (SI->getPointerOperand() == AI && SI->getValueOperand() != AI)
          Stack.push_back(SI->getValueOperand());
        continue;
      }
    }

    // Feed successor phis with the value reaching the end of this block.
    Value *Out = Stack.empty() ? Default : Stack.back();
    for (BasicBlock *Succ : BB->successors())
      if (auto It = Phis.find(Succ); It != Phis.end())
        It->second->addIncoming(Out, BB);

    for (BasicBlock *Child : DomChildren[BB])
      renameDFS(Child, AI, Default, Phis, Stack);

    Stack.resize(SavedDepth);
  }
};

} // namespace

bool ompgpu::promoteAllocasToRegisters(Function &F) {
  if (F.isDeclaration())
    return false;
  return Promoter(F).run();
}

bool ompgpu::promoteModuleAllocas(Module &M) {
  bool Changed = false;
  for (Function *F : M.functions())
    Changed |= promoteAllocasToRegisters(*F);
  return Changed;
}
