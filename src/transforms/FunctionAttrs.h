//===- transforms/FunctionAttrs.h - Attribute inference ---------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bottom-up inference of function attributes (readnone/readonly/nosync)
/// over call graph SCCs. SPMDzation consults these attributes to decide
/// which code is "SPMD amenable" (side-effect free or annotated, Fig. 7).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_TRANSFORMS_FUNCTIONATTRS_H
#define OMPGPU_TRANSFORMS_FUNCTIONATTRS_H

namespace ompgpu {

class Module;

/// Infers ReadNone/ReadOnly/NoSync/WillReturn for definitions in \p M.
/// Declarations keep whatever attributes they were given (the device
/// runtime registry pre-attributes its functions). Returns true if any
/// attribute was added.
bool inferFunctionAttrs(Module &M);

/// Stable pipeline name of inferFunctionAttrs (pass instrumentation).
inline constexpr const char FunctionAttrsPassName[] = "function-attrs";

} // namespace ompgpu

#endif // OMPGPU_TRANSFORMS_FUNCTIONATTRS_H
