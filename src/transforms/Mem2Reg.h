//===- transforms/Mem2Reg.h - Alloca promotion to SSA -----------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Promotes non-escaping allocas to SSA registers using iterated dominance
/// frontiers. HeapToStack (Sec. IV-A) rewrites globalization calls into
/// allocas; this pass then turns them into registers, which is what makes
/// the register counts and kernel times recover (Fig. 10, Fig. 11).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_TRANSFORMS_MEM2REG_H
#define OMPGPU_TRANSFORMS_MEM2REG_H

namespace ompgpu {

class AllocaInst;
class Function;
class Module;

/// True if every use of \p AI is a direct typed load or store (to the
/// pointer operand), making it promotable.
bool isAllocaPromotable(const AllocaInst *AI);

/// Promotes all promotable allocas in \p F. Returns true if changed.
bool promoteAllocasToRegisters(Function &F);

/// Runs promotion over every definition in \p M.
bool promoteModuleAllocas(Module &M);

/// Stable pipeline name of promoteModuleAllocas (pass instrumentation).
inline constexpr const char Mem2RegPassName[] = "mem2reg";

} // namespace ompgpu

#endif // OMPGPU_TRANSFORMS_MEM2REG_H
