//===- driver/Bisect.h - Automatic opt-bisect driver ------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Automatic bisection over the pass pipeline, modeled on LLVM's
/// -opt-bisect-limit workflow: recompile the same input under decreasing
/// limits and binary-search to the first pass execution whose output fails
/// verification — or, with an oracle, diverges behaviorally (e.g. a gpusim
/// differential smoke run). Where recovery mode (PassInstrumentationOptions
/// ::Recover) keeps a production compile alive, this driver is the offline
/// tool that localizes which pass execution to blame.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_DRIVER_BISECT_H
#define OMPGPU_DRIVER_BISECT_H

#include "driver/Pipeline.h"

#include <functional>
#include <memory>

namespace ompgpu {

class IRContext;
class Module;

/// Builds a fresh, identical input module for one probe compile. Called
/// once per probe; the module must be deterministic across calls or the
/// bisection is meaningless.
using BisectModuleFactory =
    std::function<std::unique_ptr<Module>(IRContext &)>;

/// Judges one probe after compilation; returns true when the compiled
/// module is good. Verification failures are already treated as bad before
/// the oracle runs, so an oracle only needs to model behavioral checks
/// (run the kernel, compare outputs).
using BisectOracle = std::function<bool(Module &, const CompileResult &)>;

/// Outcome of runOptBisect.
struct BisectResult {
  /// Whether any probe failed at all (the full compile is bad).
  bool FoundFailure = false;
  /// 1-based bisect index of the first bad pass execution; 0 when the
  /// pipeline is bad even with every skippable execution disabled (the
  /// failure is in the input or a required lowering step, not an
  /// optimization); -1 when no failure was found.
  int64_t FirstBadExecution = -1;
  /// Pass name and invocation of that execution ("" when not attributable
  /// to a skippable pass).
  std::string PassName;
  unsigned Invocation = 0;
  /// Skippable executions the full pipeline runs (the search space).
  unsigned TotalExecutions = 0;
  /// Probe compiles performed.
  unsigned Probes = 0;
  /// Compile result of the last good probe (-opt-bisect-limit =
  /// FirstBadExecution - 1), with an OMP181 remark appended naming the
  /// boundary. When no failure was found this is the full compile.
  CompileResult LastGood;
};

/// Binary-searches for the first bad pass execution. Probes always run
/// with VerifyEach on and recovery off — bisection wants failures to
/// surface, not be rolled back — and \p Opts' own OptBisectLimit is
/// overridden per probe. Worst case this performs
/// 2 + ceil(log2(TotalExecutions)) probe compiles.
BisectResult runOptBisect(const BisectModuleFactory &Factory,
                          PipelineOptions Opts,
                          const BisectOracle &Oracle = nullptr);

} // namespace ompgpu

#endif // OMPGPU_DRIVER_BISECT_H
