//===- driver/Presets.cpp - Canonical pipeline preset tables ---------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "driver/Presets.h"

using namespace ompgpu;

std::vector<PresetSpec> ompgpu::evaluationPresetLadder() {
  std::vector<PresetSpec> Ladder;
  Ladder.push_back({"LLVM 12", makeLLVM12Pipeline(), false});
  Ladder.push_back({"No OpenMP Optimization", makeDevNoOptPipeline(), false});
  Ladder.push_back(
      {"heap-2-stack", makeDevPipeline(true, false, false, false, false),
       false});
  Ladder.push_back({"heap-2-stack&shared (=h2s2)",
                    makeDevPipeline(true, true, false, false, false), false});
  Ladder.push_back(
      {"h2s2 + RTCspec", makeDevPipeline(true, true, true, false, false),
       false});
  Ladder.push_back({"h2s2 + RTCspec + CSM",
                    makeDevPipeline(true, true, true, true, false), false});
  Ladder.push_back({"h2s2 + RTCspec + SPMDzation (LLVM Dev 0)",
                    makeDevPipeline(true, true, true, true, true), false});
  Ladder.push_back({"CUDA (Clang Dev)", makeCUDAPipeline(), true});
  return Ladder;
}

std::vector<PipelineOptions> ompgpu::fuzzPresetMatrix() {
  std::vector<PipelineOptions> Presets;
  Presets.push_back(makeLLVM12Pipeline());
  Presets.push_back(makeDevNoOptPipeline());
  Presets.push_back(makeDevPipeline());
  PipelineOptions NoSPMD = makeDevPipeline(true, true, true, true,
                                           /*SPMDzation=*/false);
  NoSPMD.Name = "Dev (no SPMDzation)";
  Presets.push_back(NoSPMD);
  PipelineOptions NoGlob = makeDevPipeline(/*HeapToStack=*/false,
                                           /*HeapToShared=*/false);
  NoGlob.Name = "Dev (no globalization opts)";
  Presets.push_back(NoGlob);
  return Presets;
}
