//===- driver/CompileReport.h - JSON compile-report -------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes one device compilation into a schema-versioned JSON
/// document: pipeline configuration, per-pass timings and change verdicts
/// (PassInstrumentation), OpenMPOptStats, all remarks with their OMP1xx
/// identifiers, the non-zero StatisticRegistry counters, and optional
/// simulated kernel statistics. The schema is documented field-by-field in
/// docs/compile-report.md; bench/ binaries and CI consume this artifact.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_DRIVER_COMPILEREPORT_H
#define OMPGPU_DRIVER_COMPILEREPORT_H

#include "driver/Pipeline.h"
#include "gpusim/KernelStats.h"
#include "support/Error.h"
#include "support/JSON.h"

#include <vector>

namespace ompgpu {

/// Version of the compile-report JSON schema. Bump on any
/// field rename/removal; additions are backwards compatible.
/// v2 added the `recovery` section and the per-execution
/// bisect/skip/rollback fields; v3 added the `lint` section
/// and the per-execution lint_failed field; v4 added the `profile`
/// section and the PGO counters in `openmp_opt_stats`
/// (docs/compile-report.md, docs/pgo.md); v5 added the `cache` section
/// and switched `statistics` from the process-global registry to the
/// per-compile deltas in CompileResult::Statistics
/// (docs/compile-service.md); v6 added the `resilience` section and the
/// per-kernel `cycle_budget`/`watchdog_timeout` watchdog fields
/// (docs/resilience.md); v7 added the `arch` section naming the target
/// architecture and its key machine parameters (docs/architectures.md);
/// v8 added the `mapping` section (MapInference's per-parameter access
/// classes and map kinds), `run_map_inference` in `pipeline`, and the
/// per-kernel modeled-transfer counters (docs/data-mapping.md); v9 added
/// the `multi_device` section (device-group shape and DeviceGroupStats
/// for compiles launched onto a DeviceGroup, docs/multi-device.md).
inline constexpr unsigned CompileReportSchemaVersion = 9;

/// Serializes one MapInferenceResult as the report's `mapping` section:
/// {ran, minimal_count, fallback_count, params:[...]}. Shared with the
/// bench/lint mapping-report so the two artifacts cannot drift.
json::Value mapInferenceToJSON(bool Ran, const MapInferenceResult &Mapping);

/// Builds the report document for one compilation. \p Kernels optionally
/// attaches simulated launches of the compiled module (Fig. 10 data).
/// \p CacheInfo, when non-null, is embedded verbatim as the `cache`
/// section (the compile service passes key/hit/cacheable); otherwise the
/// section is `{"managed": false}` — an uncached, direct compile.
/// \p MultiDevice, when non-null, is embedded verbatim as the
/// `multi_device` section (bench/cg passes the device-group shape and
/// DeviceGroupStats, docs/multi-device.md); otherwise that section is
/// `{"managed": false}` — a single-device compile.
json::Value buildCompileReport(const PipelineOptions &Opts,
                               const CompileResult &Result,
                               const std::vector<KernelStats> &Kernels = {},
                               const json::Value *CacheInfo = nullptr,
                               const json::Value *MultiDevice = nullptr);

/// Writes \p Report pretty-printed, with a trailing newline.
void writeCompileReport(raw_ostream &OS, const json::Value &Report);

/// Writes \p Report to \p Path. Returns a failure Error (never aborts)
/// when the file cannot be opened or a write fails.
Error writeCompileReportFile(const std::string &Path,
                             const json::Value &Report);

} // namespace ompgpu

#endif // OMPGPU_DRIVER_COMPILEREPORT_H
