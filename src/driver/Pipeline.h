//===- driver/Pipeline.h - Compilation pipeline presets ---------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end device compilation pipelines corresponding to the compiler
/// builds of the evaluation (Sec. V): the LLVM 12 baseline, the
/// development branch with the OpenMP optimizations ("LLVM Dev"), the
/// development branch with them disabled, and the per-optimization subsets
/// of Fig. 11 (h2s, h2s2, +RTCspec, +CSM, +SPMDzation).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_DRIVER_PIPELINE_H
#define OMPGPU_DRIVER_PIPELINE_H

#include "analysis/MapInference.h"
#include "analysis/OMPLint.h"
#include "core/OpenMPOpt.h"
#include "frontend/OMPCodeGen.h"
#include "gpusim/ArchSpec.h"
#include "gpusim/MachineModel.h"
#include "support/PassInstrumentation.h"

namespace ompgpu {

class Module;

/// One device compilation configuration.
struct PipelineOptions {
  /// A caller-injected module pass, run after openmp-opt and before the
  /// cleanup passes. Used by tests and the bisection driver to splice
  /// extra (possibly misbehaving) passes into any preset pipeline.
  struct ExtraPass {
    /// Stable name, recorded in the instrumentation like built-in passes.
    std::string Name;
    /// The pass body; returns whether it changed the module.
    std::function<bool(Module &)> Run;
  };

  /// Profile-guided-optimization mode of one compile (docs/pgo.md).
  enum class ProfileMode : uint8_t {
    Off, ///< No PGO involvement.
    Gen, ///< This compile feeds a profiling run (anchors are always
         ///< attached; Gen only marks the intent for the compile report).
    Use, ///< OptConfig.Profile holds the execution profile to consume.
  };

  /// Name shown in benchmark tables, e.g. "LLVM 12" or "h2s2 + RTCspec".
  std::string Name;
  /// The architecture this compile targets and the simulator executes on
  /// (docs/architectures.md). Defaults to the registry "v100" (identical
  /// to MachineModel's defaults). Set it via applyArch so the dependent
  /// OptConfig defaults (warp size, shared-memory budget) stay in sync;
  /// the compile-service cache key includes archFingerprint(Arch).
  ArchSpec Arch;
  /// Front-end lowering scheme the workload must be generated with.
  CodeGenScheme Scheme = CodeGenScheme::Simplified13;
  /// Device runtime generation (cost profile).
  RuntimeFlavor Flavor = RuntimeFlavor::Modern;
  /// Whether the OpenMP-aware pass runs at all.
  bool RunOpenMPOpt = true;
  OpenMPOptConfig OptConfig;
  /// PGO mode recorded in the compile report's "profile" section. Use
  /// requires OptConfig.Profile to point at the execution profile; the
  /// bench/pgo driver and the -profile-gen/-profile-use flags of the
  /// benchmark drivers set this up.
  ProfileMode Profile = ProfileMode::Off;
  /// Generic mid-end cleanups (mem2reg, simplification, DCE).
  bool RunCleanups = true;
  /// Observability and robustness: TimePasses / TrackChanges / VerifyEach /
  /// LintEach / Recover / OptBisectLimit. All off by default; see
  /// docs/compile-report.md.
  PassInstrumentationOptions Instrument;
  /// Run OMPLint over the final optimized module; findings are recorded in
  /// CompileResult::LintFindings and emitted as OMP200-OMP204 remarks.
  /// On by default: the lint stage is analysis-only and every preset is
  /// expected to produce lint-clean device IR. Combine with
  /// Instrument.LintEach to lint after every pass, and with
  /// Instrument.Recover to roll back and quarantine a pass whose output
  /// lints dirty (like a verifier failure).
  bool RunLint = true;
  /// Per-checker switches for the lint runs.
  LintOptions Lint;
  /// Run the MapInference stage over the optimized module, before the lint
  /// stage: classify every kernel pointer parameter via
  /// MemoryAccessSummary and record the minimal map clause in its
  /// KernelEnvironment (OMP240/OMP241, docs/data-mapping.md). On by
  /// default: the stage is metadata-only (the printed IR is unchanged),
  /// and the launch harness turns the inferred kinds into modeled
  /// host<->device transfers.
  bool RunMapInference = true;
  /// Extra passes spliced into the pipeline (after openmp-opt, before
  /// cleanups), in order.
  std::vector<ExtraPass> ExtraPasses;
};

/// One global Statistic counter's delta attributed to a single compile
/// (support/Statistic.h StatisticScope). Carried by value so the report
/// stays meaningful when other compiles advance the global counters
/// concurrently.
struct CapturedStatistic {
  std::string DebugType;
  std::string Name;
  std::string Description;
  uint64_t Value = 0;
};

/// Outputs of optimizeDeviceModule.
struct CompileResult {
  OpenMPOptStats Stats;
  RemarkCollector Remarks;
  bool VerifyFailed = false;
  std::string VerifyError;
  /// Per-pass instrumentation records in execution (pre-)order; populated
  /// when any PipelineOptions::Instrument flag is set.
  std::vector<PassExecution> Passes;
  /// Name of the first pass after which VerifyEach found the module
  /// corrupt ("" when clean or VerifyEach off).
  std::string FirstCorruptPass;
  /// Sum of top-level pass wall times (ms).
  double TotalPassMillis = 0.0;
  /// \name Recovery (see docs/compile-report.md, schema v2)
  /// @{
  /// Whether the pipeline ran with per-pass rollback enabled.
  bool RecoveryEnabled = false;
  /// The -opt-bisect-limit the pipeline ran under (-1 = no limit).
  int64_t OptBisectLimit = -1;
  /// Every rollback that happened, in pipeline order. Each event also
  /// produced an OMP180 remark.
  std::vector<PassRecoveryEvent> Recoveries;
  /// Passes quarantined (skipped after their first failure), sorted.
  std::vector<std::string> QuarantinedPasses;
  /// @}
  /// \name Lint (see docs/compile-report.md, schema v3)
  /// @{
  /// Whether the final lint stage ran (RunLint set and the module
  /// verified).
  bool LintRan = false;
  /// Findings of the final lint run over the optimized module; each also
  /// produced an OMP200-OMP204 remark.
  std::vector<LintFinding> LintFindings;
  /// Name of the first pass after which LintEach reported findings (""
  /// when clean, LintEach off, or the failure was rolled back under
  /// recovery).
  std::string FirstLintFailPass;
  /// Findings summary of that first per-pass lint failure.
  std::string FirstLintError;
  /// @}
  /// \name Profile-guided optimization (schema v4, docs/pgo.md)
  /// @{
  /// The PGO mode the pipeline ran under.
  PipelineOptions::ProfileMode ProfileMode =
      PipelineOptions::ProfileMode::Off;
  /// Whether openmp-opt actually consumed a non-empty execution profile.
  bool ProfileConsumed = false;
  /// The shared-memory budget HeapToShared ranked against.
  uint64_t SharedMemoryLimit = UINT64_MAX;
  /// @}
  /// \name Per-compile sinks (schema v5, docs/compile-service.md)
  /// @{
  /// Non-zero Statistic deltas this compile produced, in registration
  /// order. Captured via a StatisticScope on the compiling thread, so the
  /// numbers are exact even when other compiles run concurrently; the
  /// compile-report's "statistics" section is built from this.
  std::vector<CapturedStatistic> Statistics;
  /// @}
  /// \name Data-mapping inference (schema v8, docs/data-mapping.md)
  /// @{
  /// Whether the MapInference stage ran (RunMapInference set and the
  /// module verified).
  bool MapInferenceRan = false;
  /// Per-kernel-parameter mapping decisions; the compile-report's
  /// `mapping` section is built from this.
  MapInferenceResult Mapping;
  /// @}
};

/// Links the device runtime into \p M and runs the configured pipeline.
CompileResult optimizeDeviceModule(Module &M, const PipelineOptions &Opts);

/// \name Evaluation configurations (Fig. 10 / Fig. 11)
/// @{
PipelineOptions makeLLVM12Pipeline();
/// "LLVM Dev" with -openmp-opt disabled ("No OpenMP Optimization").
PipelineOptions makeDevNoOptPipeline();
/// "LLVM Dev" with a subset of the optimizations enabled.
PipelineOptions makeDevPipeline(bool HeapToStack = true,
                                bool HeapToShared = true,
                                bool RuntimeCallFolding = true,
                                bool CustomStateMachine = true,
                                bool SPMDzation = true);
/// Plain CUDA-style compilation (no OpenMP runtime involved).
PipelineOptions makeCUDAPipeline();
/// @}

/// Retargets \p Opts to \p Arch: stores the spec, folds the arch's
/// warp/wavefront size into OptConfig.WarpSize (what
/// __kmpc_get_warp_size folds to), and — when the caller has not set an
/// explicit budget — defaults OptConfig.SharedMemoryLimit to the arch's
/// per-block shared-memory capacity so HeapToShared ranks against the
/// real machine instead of the unlimited sentinel. Call it after preset
/// construction and after any explicit OptConfig overrides you want to
/// keep (an explicit SharedMemoryLimit is preserved).
void applyArch(PipelineOptions &Opts, const ArchSpec &Arch);

} // namespace ompgpu

#endif // OMPGPU_DRIVER_PIPELINE_H
