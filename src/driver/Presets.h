//===- driver/Presets.h - Canonical pipeline preset tables ------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single definition of the evaluation's configuration ladder (Fig. 11)
/// and the differential-fuzzing preset matrix. bench/BenchSupport, bench/lint
/// and the fuzz oracle all derive their configuration tables from here, so
/// a new preset (or a label fix) lands everywhere at once.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_DRIVER_PRESETS_H
#define OMPGPU_DRIVER_PRESETS_H

#include "driver/Pipeline.h"

#include <vector>

namespace ompgpu {

/// One labeled compiler configuration of the evaluation.
struct PresetSpec {
  /// Row label used by benchmark tables and reports ("LLVM 12", "h2s2 +
  /// RTCspec", ...).
  std::string Label;
  PipelineOptions Pipeline;
  /// Compile the workload's CUDA-style kernel instead of the OpenMP one.
  bool UseCUDA = false;
};

/// The Fig. 10/11 configuration ladder in evaluation order: LLVM 12,
/// No OpenMP Optimization, heap-2-stack, h2s2, + RTCspec, + CSM,
/// + SPMDzation (LLVM Dev 0), CUDA.
std::vector<PresetSpec> evaluationPresetLadder();

/// The differential-fuzzing preset matrix (fuzz oracle and bench/fuzz):
/// LLVM 12, Dev without openmp-opt, full Dev, Dev without SPMDzation, Dev
/// without the globalization optimizations.
std::vector<PipelineOptions> fuzzPresetMatrix();

} // namespace ompgpu

#endif // OMPGPU_DRIVER_PRESETS_H
