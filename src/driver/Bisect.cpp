//===- driver/Bisect.cpp - Automatic opt-bisect driver ---------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "driver/Bisect.h"
#include "ir/IRContext.h"
#include "ir/Module.h"

#include <algorithm>
#include <utility>

using namespace ompgpu;

BisectResult ompgpu::runOptBisect(const BisectModuleFactory &Factory,
                                  PipelineOptions Opts,
                                  const BisectOracle &Oracle) {
  BisectResult R;

  // Probes run fully verified and un-recovered: bisection wants the
  // failure to surface in the probe verdict, not be rolled back.
  Opts.Instrument.Recover = false;
  Opts.Instrument.VerifyEach = true;

  auto Probe = [&](int64_t Limit, CompileResult &Out) {
    ++R.Probes;
    IRContext Ctx;
    std::unique_ptr<Module> M = Factory(Ctx);
    Opts.Instrument.OptBisectLimit = Limit;
    Out = optimizeDeviceModule(*M, Opts);
    if (Out.VerifyFailed)
      return false;
    return !Oracle || Oracle(*M, Out);
  };

  CompileResult Full;
  bool FullGood = Probe(-1, Full);
  for (const PassExecution &E : Full.Passes)
    R.TotalExecutions =
        std::max(R.TotalExecutions, static_cast<unsigned>(E.BisectIndex));
  if (FullGood) {
    R.LastGood = std::move(Full);
    return R;
  }
  R.FoundFailure = true;

  // Establish the baseline: with every skippable execution disabled the
  // pipeline is just the required lowering steps. If that is already bad,
  // no optimization pass is to blame.
  CompileResult Baseline;
  if (!Probe(0, Baseline)) {
    R.FirstBadExecution = 0;
    return R;
  }

  // Invariant: limit Lo is good, limit Hi is bad (limit TotalExecutions
  // is equivalent to no limit). Classic binary search on the boundary.
  int64_t Lo = 0, Hi = R.TotalExecutions;
  CompileResult LastGood = std::move(Baseline);
  while (Hi - Lo > 1) {
    int64_t Mid = Lo + (Hi - Lo) / 2;
    CompileResult MidRes;
    if (Probe(Mid, MidRes)) {
      Lo = Mid;
      LastGood = std::move(MidRes);
    } else {
      Hi = Mid;
    }
  }

  R.FirstBadExecution = Hi;
  for (const PassExecution &E : Full.Passes)
    if (static_cast<int64_t>(E.BisectIndex) == Hi) {
      R.PassName = E.Name;
      R.Invocation = E.Invocation;
      break;
    }
  R.LastGood = std::move(LastGood);
  R.LastGood.Remarks.emit(
      RemarkId::OMP181, /*Missed=*/true, "",
      "opt-bisect: first bad pass execution is #" + std::to_string(Hi) +
          " ('" + R.PassName + "', invocation " +
          std::to_string(R.Invocation) + " of " +
          std::to_string(R.TotalExecutions) +
          " executions); last good -opt-bisect-limit=" +
          std::to_string(Hi - 1));
  return R;
}
