//===- driver/Pipeline.cpp - Compilation pipeline presets ------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/AsmWriter.h"
#include "profile/Profile.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "rtl/DeviceRTL.h"
#include "support/Statistic.h"
#include "transforms/Cloning.h"
#include "transforms/Inliner.h"
#include "transforms/Mem2Reg.h"
#include "transforms/Simplify.h"
#include "transforms/StoreToLoadForwarding.h"

#include <memory>

using namespace ompgpu;

CompileResult ompgpu::optimizeDeviceModule(Module &M,
                                           const PipelineOptions &Opts) {
  CompileResult Result;

  // Attribute global Statistic increments to this compile: with concurrent
  // compiles on a worker pool the registry totals interleave, but the
  // thread-local scope sees exactly this pipeline's deltas.
  StatisticScope StatScope;

  PassInstrumentation PI(
      Opts.Instrument, [&M] { return hashModule(M); },
      [&M](std::string *Error) { return verifyModule(M, Error); });
  if (Opts.RunLint)
    PI.setLintCallback([&M, &Opts](std::string *Error) {
      LintResult R = runOMPLint(M, Opts.Lint);
      if (R.clean())
        return false;
      if (Error)
        *Error = R.summary();
      return true;
    });

  // Recovery mode: the instrumentation snapshots the module before each
  // pass (a stack, since sub-passes nest) and restores it when the pass
  // fails, so the pipeline always terminates with the IR the last healthy
  // pass produced.
  std::vector<std::unique_ptr<Module>> Snapshots;
  if (Opts.Instrument.Recover)
    PI.setRecoveryCallbacks(
        [&] { Snapshots.push_back(cloneModule(M)); },
        [&](bool Restore) {
          std::unique_ptr<Module> Snap = std::move(Snapshots.back());
          Snapshots.pop_back();
          if (Restore) {
            M.clear();
            M.takeContentsFrom(*Snap);
          }
        });

  // Linking the device runtime is a lowering step, not an optimization:
  // it is required, so neither quarantine nor -opt-bisect-limit skips it.
  PI.runPass(
      LinkDeviceRTLPassName,
      [&M] {
        linkDeviceRTL(M);
        return true;
      },
      /*Required=*/true);

  auto Finish = [&] {
    Result.ProfileMode = Opts.Profile;
    Result.ProfileConsumed = Opts.OptConfig.Profile &&
                             !Opts.OptConfig.Profile->empty() &&
                             Opts.RunOpenMPOpt;
    Result.SharedMemoryLimit = Opts.OptConfig.SharedMemoryLimit;
    Result.Passes = PI.executions();
    Result.FirstCorruptPass = PI.firstCorruptPass();
    Result.TotalPassMillis = PI.totalMillis();
    Result.RecoveryEnabled = Opts.Instrument.Recover;
    Result.OptBisectLimit = Opts.Instrument.OptBisectLimit;
    Result.Recoveries = PI.recoveries();
    Result.QuarantinedPasses = PI.quarantinedPasses();
    for (const PassRecoveryEvent &Ev : Result.Recoveries) {
      std::string Cause = Ev.Kind == "verify-fail" ? "corrupted the module"
                          : Ev.Kind == "lint-fail"
                              ? "failed the device-IR lint"
                          : Ev.Kind == "fatal-error"
                              ? "tripped a fatal error"
                              : "threw an exception";
      Result.Remarks.emit(RemarkId::OMP180, /*Missed=*/true, "",
                          "pass '" + Ev.PassName + "' (invocation " +
                              std::to_string(Ev.Invocation) + ") " + Cause +
                              " and was rolled back and quarantined: " +
                              Ev.Message);
    }
    // VerifyEach failures surface like the final verify: the pipeline
    // reports the module corrupt and keeps the attributed pass name.
    // Under recovery the corruption was rolled back, so firstCorruptPass
    // stays empty and the module stays reportable as clean.
    if (!Result.VerifyFailed && !PI.firstCorruptPass().empty()) {
      Result.VerifyFailed = true;
      Result.VerifyError = PI.verifyError();
    }
    Result.FirstLintFailPass = PI.firstLintFailPass();
    Result.FirstLintError = PI.lintError();
    for (const Statistic *S : StatisticRegistry::get().stats()) {
      auto It = StatScope.deltas().find(S);
      if (It != StatScope.deltas().end() && It->second != 0)
        Result.Statistics.push_back(
            {S->getDebugType(), S->getName(), S->getDesc(), It->second});
    }
    return Result;
  };

  if (verifyModule(M, &Result.VerifyError)) {
    Result.VerifyFailed = true;
    return Finish();
  }

  if (Opts.RunOpenMPOpt)
    PI.runPass(OpenMPOptPassName, [&] {
      return runOpenMPOpt(M, Opts.OptConfig, Result.Stats, Result.Remarks,
                          &PI);
    });

  for (const PipelineOptions::ExtraPass &EP : Opts.ExtraPasses)
    PI.runPass(EP.Name, [&EP, &M] { return EP.Run(M); });

  if (Opts.RunCleanups) {
    auto Cleanup = [&](const char *Name, bool (*Pass)(Module &)) {
      PI.runPass(Name, [&M, Pass] { return Pass(M); });
    };
    Cleanup(SimplifyPassName, simplifyModule);
    // The regular inliner flattens parallel regions once the OpenMP pass
    // made the callees visible (direct calls / constant work functions).
    Cleanup(InlineParallelRegionsPassName, inlineParallelRegions);
    Cleanup(SimplifyPassName, simplifyModule);
    Cleanup(Mem2RegPassName, promoteModuleAllocas);
    Cleanup(StoreToLoadForwardingPassName, forwardStoresToLoads);
    Cleanup(SimplifyPassName, simplifyModule);
  }

  if (verifyModule(M, &Result.VerifyError)) {
    Result.VerifyFailed = true;
  } else {
    if (Opts.RunMapInference) {
      // Map inference runs on the optimizer's output (post-cleanup, so
      // frames are inlined/forwarded where the preset allows) and before
      // the lint stage, which cross-checks the recorded mappings. It only
      // mutates KernelEnvironment metadata, never the printed IR, and is
      // required: an analysis cannot be quarantined or bisected away.
      PI.runPass(
          MapInferencePassName,
          [&] {
            Result.Mapping = runMapInference(M, Result.Remarks);
            Result.MapInferenceRan = true;
            return false;
          },
          /*Required=*/true);
    }
    if (Opts.RunLint) {
    // The lint stage is a required pipeline step (an analysis can't be
    // quarantined or bisected away); its findings become OMP200-OMP204
    // remarks and the compile-report's lint section.
    PI.runPass(
        OMPLintPassName,
        [&] {
          LintResult LR = runOMPLint(M, Opts.Lint);
          Result.LintRan = true;
          Result.LintFindings = LR.Findings;
          for (const LintFinding &F : Result.LintFindings)
            Result.Remarks.emit(
                static_cast<RemarkId>(lintRemarkNumber(F.Kind)),
                /*Missed=*/true, F.FunctionName, F.Message);
          return false;
        },
        /*Required=*/true);
    }
  }
  return Finish();
}

PipelineOptions ompgpu::makeLLVM12Pipeline() {
  PipelineOptions P;
  P.Name = "LLVM 12";
  P.Scheme = CodeGenScheme::Legacy12;
  P.Flavor = RuntimeFlavor::Legacy;
  P.RunOpenMPOpt = false;
  return P;
}

PipelineOptions ompgpu::makeDevNoOptPipeline() {
  PipelineOptions P;
  P.Name = "No OpenMP Optimization";
  P.Scheme = CodeGenScheme::Simplified13;
  P.Flavor = RuntimeFlavor::Modern;
  P.RunOpenMPOpt = false;
  return P;
}

PipelineOptions ompgpu::makeDevPipeline(bool HeapToStack, bool HeapToShared,
                                        bool RuntimeCallFolding,
                                        bool CustomStateMachine,
                                        bool SPMDzation) {
  PipelineOptions P;
  P.Scheme = CodeGenScheme::Simplified13;
  P.Flavor = RuntimeFlavor::Modern;
  P.RunOpenMPOpt = true;
  P.OptConfig.DisableDeglobalization = !HeapToStack;
  P.OptConfig.DisableHeapToShared = !HeapToShared;
  P.OptConfig.DisableFolding = !RuntimeCallFolding;
  P.OptConfig.DisableStateMachineRewrite = !CustomStateMachine;
  P.OptConfig.DisableSPMDization = !SPMDzation;

  std::string Name;
  if (HeapToStack && HeapToShared)
    Name = "h2s2";
  else if (HeapToStack)
    Name = "heap-2-stack";
  if (RuntimeCallFolding)
    Name += Name.empty() ? "RTCspec" : " + RTCspec";
  if (SPMDzation)
    Name += Name.empty() ? "SPMDzation" : " + SPMDzation";
  else if (CustomStateMachine)
    Name += Name.empty() ? "CSM" : " + CSM";
  P.Name = Name.empty() ? "LLVM Dev (no openmp-opt passes)" : Name;
  return P;
}

PipelineOptions ompgpu::makeCUDAPipeline() {
  PipelineOptions P;
  P.Name = "CUDA";
  P.Scheme = CodeGenScheme::Simplified13; // irrelevant: no OpenMP lowering
  P.Flavor = RuntimeFlavor::Modern;
  P.RunOpenMPOpt = false;
  return P;
}

void ompgpu::applyArch(PipelineOptions &Opts, const ArchSpec &Arch) {
  Opts.Arch = Arch;
  Opts.OptConfig.WarpSize = Arch.Machine.WarpSize;
  if (Opts.OptConfig.SharedMemoryLimit == UINT64_MAX)
    Opts.OptConfig.SharedMemoryLimit = Arch.Machine.SharedMemPerBlockBytes;
}
