//===- driver/CompileReport.cpp - JSON compile-report ----------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "driver/CompileReport.h"
#include "support/FileSystem.h"
#include "support/raw_ostream.h"

using namespace ompgpu;

static const char *schemeName(CodeGenScheme S) {
  switch (S) {
  case CodeGenScheme::Legacy12:
    return "legacy12";
  case CodeGenScheme::Simplified13:
    return "simplified13";
  }
  return "unknown";
}

static const char *flavorName(RuntimeFlavor F) {
  switch (F) {
  case RuntimeFlavor::Modern:
    return "modern";
  case RuntimeFlavor::Legacy:
    return "legacy";
  }
  return "unknown";
}

static json::Value pipelineSection(const PipelineOptions &Opts) {
  json::Value Instr = json::Value::makeObject();
  Instr.set("time_passes", Opts.Instrument.TimePasses)
      .set("track_changes", Opts.Instrument.TrackChanges)
      .set("verify_each", Opts.Instrument.VerifyEach)
      .set("lint_each", Opts.Instrument.LintEach)
      .set("recover", Opts.Instrument.Recover)
      .set("opt_bisect_limit", Opts.Instrument.OptBisectLimit);

  json::Value Cfg = json::Value::makeObject();
  Cfg.set("disable_internalization", Opts.OptConfig.DisableInternalization)
      .set("disable_deglobalization", Opts.OptConfig.DisableDeglobalization)
      .set("disable_heap_to_shared", Opts.OptConfig.DisableHeapToShared)
      .set("disable_spmdization", Opts.OptConfig.DisableSPMDization)
      .set("disable_state_machine_rewrite",
           Opts.OptConfig.DisableStateMachineRewrite)
      .set("disable_folding", Opts.OptConfig.DisableFolding);

  json::Value P = json::Value::makeObject();
  P.set("name", Opts.Name)
      .set("scheme", schemeName(Opts.Scheme))
      .set("runtime_flavor", flavorName(Opts.Flavor))
      .set("run_openmp_opt", Opts.RunOpenMPOpt)
      .set("run_cleanups", Opts.RunCleanups)
      .set("run_lint", Opts.RunLint)
      .set("run_map_inference", Opts.RunMapInference)
      .set("openmp_opt_config", std::move(Cfg))
      .set("instrumentation", std::move(Instr));
  return P;
}

static json::Value passesSection(const CompileResult &Result) {
  json::Value Executions = json::Value::makeArray();
  for (const PassExecution &Rec : Result.Passes) {
    json::Value E = json::Value::makeObject();
    E.set("name", Rec.Name)
        .set("depth", Rec.Depth)
        .set("invocation", Rec.Invocation)
        .set("bisect_index", Rec.BisectIndex)
        .set("wall_ms", Rec.WallMillis)
        .set("changed", Rec.changed())
        .set("reported_change", Rec.ReportedChange)
        .set("ir_hash_tracked", Rec.HashTracked)
        .set("verify_failed", Rec.VerifyFailed)
        .set("lint_failed", Rec.LintFailed)
        .set("skipped", Rec.Skipped)
        .set("skip_reason", Rec.SkipReason)
        .set("rolled_back", Rec.RolledBack);
    Executions.push_back(std::move(E));
  }
  json::Value P = json::Value::makeObject();
  P.set("total_wall_ms", Result.TotalPassMillis)
      .set("executions", std::move(Executions));
  return P;
}

static json::Value recoverySection(const CompileResult &Result) {
  json::Value Events = json::Value::makeArray();
  for (const PassRecoveryEvent &Ev : Result.Recoveries) {
    json::Value E = json::Value::makeObject();
    E.set("pass", Ev.PassName)
        .set("invocation", Ev.Invocation)
        .set("kind", Ev.Kind)
        .set("message", Ev.Message);
    Events.push_back(std::move(E));
  }

  json::Value Quarantined = json::Value::makeArray();
  for (const std::string &Name : Result.QuarantinedPasses)
    Quarantined.push_back(json::Value(Name));

  unsigned SkippedExecutions = 0;
  for (const PassExecution &Rec : Result.Passes)
    if (Rec.Skipped)
      ++SkippedExecutions;

  json::Value R = json::Value::makeObject();
  R.set("enabled", Result.RecoveryEnabled)
      .set("opt_bisect_limit", Result.OptBisectLimit)
      .set("events", std::move(Events))
      .set("quarantined_passes", std::move(Quarantined))
      .set("skipped_executions", SkippedExecutions);
  return R;
}

static json::Value lintSection(const CompileResult &Result) {
  json::Value Findings = json::Value::makeArray();
  for (const LintFinding &F : Result.LintFindings) {
    json::Value E = json::Value::makeObject();
    E.set("id", "OMP" + std::to_string(lintRemarkNumber(F.Kind)))
        .set("kind", lintKindName(F.Kind))
        .set("function", F.FunctionName)
        .set("instruction", F.Instruction)
        .set("object", F.Object)
        .set("message", F.Message);
    json::Value Witness = json::Value::makeArray();
    for (const std::string &Block : F.Witness)
      Witness.push_back(json::Value(Block));
    E.set("witness", std::move(Witness));
    Findings.push_back(std::move(E));
  }
  json::Value L = json::Value::makeObject();
  L.set("ran", Result.LintRan)
      .set("finding_count", (unsigned)Result.LintFindings.size())
      .set("findings", std::move(Findings))
      .set("first_lint_fail_pass", Result.FirstLintFailPass)
      .set("first_lint_error", Result.FirstLintError);
  return L;
}

json::Value ompgpu::mapInferenceToJSON(bool Ran,
                                       const MapInferenceResult &Mapping) {
  json::Value Params = json::Value::makeArray();
  for (const ParamMappingInfo &P : Mapping.Params) {
    json::Value E = json::Value::makeObject();
    E.set("kernel", P.Kernel)
        .set("index", P.Index)
        .set("param", P.ParamName)
        .set("is_pointer", P.IsPointer);
    if (P.IsPointer)
      E.set("class", pointerAccessClassName(P.Class))
          .set("declared", mapKindName(P.Declared))
          .set("declared_explicit", P.DeclaredExplicit)
          .set("inferred", mapKindName(P.Inferred))
          .set("effective", mapKindName(P.Effective));
    Params.push_back(std::move(E));
  }
  json::Value M = json::Value::makeObject();
  M.set("ran", Ran)
      .set("minimal_count", Mapping.MinimalCount)
      .set("fallback_count", Mapping.FallbackCount)
      .set("params", std::move(Params));
  return M;
}

static const char *profileModeName(PipelineOptions::ProfileMode M) {
  switch (M) {
  case PipelineOptions::ProfileMode::Off:
    return "off";
  case PipelineOptions::ProfileMode::Gen:
    return "gen";
  case PipelineOptions::ProfileMode::Use:
    return "use";
  }
  return "unknown";
}

static json::Value profileSection(const CompileResult &Result) {
  json::Value P = json::Value::makeObject();
  P.set("mode", profileModeName(Result.ProfileMode))
      .set("consumed", Result.ProfileConsumed)
      .set("shared_memory_limit", Result.SharedMemoryLimit)
      .set("reordered_cascades", Result.Stats.PGOReorderedCascades)
      .set("ranked_allocations", Result.Stats.PGORankedAllocations)
      .set("excluded_allocations", Result.Stats.PGOExcludedAllocations)
      .set("guard_decisions", Result.Stats.PGOGuardDecisions);
  return P;
}

static json::Value openMPOptStatsSection(const OpenMPOptStats &S) {
  json::Value O = json::Value::makeObject();
  O.set("internalized_functions", S.InternalizedFunctions)
      .set("heap_to_stack", S.HeapToStack)
      .set("heap_to_shared", S.HeapToShared)
      .set("heap_to_shared_bytes", S.HeapToSharedBytes)
      .set("spmdzed_kernels", S.SPMDzedKernels)
      .set("custom_state_machines", S.CustomStateMachines)
      .set("custom_state_machines_with_fallback",
           S.CustomStateMachinesWithFallback)
      .set("guarded_regions", S.GuardedRegions)
      .set("folded_exec_mode", S.FoldedExecMode)
      .set("folded_parallel_level", S.FoldedParallelLevel)
      .set("folded_launch_params", S.FoldedLaunchParams)
      .set("pgo_reordered_cascades", S.PGOReorderedCascades)
      .set("pgo_ranked_allocations", S.PGORankedAllocations)
      .set("pgo_excluded_allocations", S.PGOExcludedAllocations)
      .set("pgo_guard_decisions", S.PGOGuardDecisions);
  return O;
}

static json::Value remarksSection(const RemarkCollector &Remarks) {
  json::Value A = json::Value::makeArray();
  for (const Remark &R : Remarks.remarks()) {
    json::Value E = json::Value::makeObject();
    E.set("id", (unsigned)R.Id)
        .set("name", remarkName(R.Id))
        .set("missed", R.Missed)
        .set("function", R.FunctionName)
        .set("message", R.Message);
    A.push_back(std::move(E));
  }
  return A;
}

static json::Value statisticsSection(const CompileResult &Result) {
  // Schema v5: per-compile deltas captured by the StatisticScope inside
  // optimizeDeviceModule, not the process-global registry — the numbers
  // stay exact when service workers compile concurrently.
  json::Value A = json::Value::makeArray();
  for (const CapturedStatistic &S : Result.Statistics) {
    if (S.Value == 0)
      continue;
    json::Value E = json::Value::makeObject();
    E.set("debug_type", S.DebugType)
        .set("name", S.Name)
        .set("value", S.Value)
        .set("description", S.Description);
    A.push_back(std::move(E));
  }
  return A;
}

static json::Value cacheSection(const json::Value *CacheInfo) {
  if (CacheInfo)
    return *CacheInfo;
  json::Value C = json::Value::makeObject();
  C.set("managed", false);
  return C;
}

/// Schema v9: compiles launched onto a DeviceGroup embed the group shape
/// and DeviceGroupStats here (bench/cg passes the payload); a plain
/// single-device compile gets the inert default (docs/multi-device.md).
static json::Value multiDeviceSection(const json::Value *MultiDevice) {
  if (MultiDevice)
    return *MultiDevice;
  json::Value M = json::Value::makeObject();
  M.set("managed", false);
  return M;
}

/// Schema v6: every report carries a `resilience` section. A direct
/// compile (and a cached payload) gets this inert default; the compile
/// service overwrites it per run with the request's ResilienceSummary
/// (docs/resilience.md), so cached entries stay run-independent.
static json::Value resilienceSection() {
  json::Value R = json::Value::makeObject();
  R.set("managed", false);
  return R;
}

/// Schema v7: the architecture the compile targeted (docs/architectures.md).
/// Provenance plus the machine parameters consumers most often pivot on;
/// the full spec (including the cost table) is reproducible from the name
/// via the registry or the JSON file passed to -march.
static json::Value archSection(const ArchSpec &A) {
  json::Value V = json::Value::makeObject();
  V.set("name", A.Name)
      .set("warp_size", A.Machine.WarpSize)
      .set("num_sms", A.Machine.NumSMs)
      .set("max_threads_per_sm", A.Machine.MaxThreadsPerSM)
      .set("registers_per_sm", A.Machine.RegistersPerSM)
      .set("shared_mem_per_sm_bytes", A.Machine.SharedMemPerSMBytes)
      .set("shared_mem_per_block_bytes", A.Machine.SharedMemPerBlockBytes)
      .set("clock_ghz", A.Machine.ClockGHz)
      .set("fingerprint", archFingerprint(A));
  return V;
}

static json::Value kernelSection(const KernelStats &S) {
  json::Value K = json::Value::makeObject();
  K.set("kernel_name", S.KernelName)
      .set("sim_ms", S.Milliseconds)
      .set("regs_per_thread", S.RegsPerThread)
      .set("static_shared_bytes", S.StaticSharedBytes)
      .set("dynamic_shared_bytes", S.DynamicSharedBytes)
      .set("blocks_per_sm", S.BlocksPerSM)
      .set("concurrent_blocks", S.ConcurrentBlocks)
      .set("waves", S.Waves)
      .set("simulated_blocks", S.SimulatedBlocks)
      .set("out_of_memory", S.OutOfMemory)
      .set("cycle_budget", S.CycleBudget)
      .set("watchdog_timeout", S.WatchdogTimeout)
      .set("trap", S.Trap);
  S.forEachCounter([&K](const char *Name, uint64_t V) { K.set(Name, V); });
  return K;
}

json::Value
ompgpu::buildCompileReport(const PipelineOptions &Opts,
                           const CompileResult &Result,
                           const std::vector<KernelStats> &Kernels,
                           const json::Value *CacheInfo,
                           const json::Value *MultiDevice) {
  json::Value Verify = json::Value::makeObject();
  Verify.set("failed", Result.VerifyFailed)
      .set("error", Result.VerifyError)
      .set("first_corrupt_pass", Result.FirstCorruptPass);

  json::Value KernelArray = json::Value::makeArray();
  for (const KernelStats &S : Kernels)
    KernelArray.push_back(kernelSection(S));

  json::Value Doc = json::Value::makeObject();
  Doc.set("schema_version", CompileReportSchemaVersion)
      .set("generator", "ompgpu")
      .set("arch", archSection(Opts.Arch))
      .set("pipeline", pipelineSection(Opts))
      .set("verify", std::move(Verify))
      .set("passes", passesSection(Result))
      .set("recovery", recoverySection(Result))
      .set("lint", lintSection(Result))
      .set("mapping",
           mapInferenceToJSON(Result.MapInferenceRan, Result.Mapping))
      .set("profile", profileSection(Result))
      .set("openmp_opt_stats", openMPOptStatsSection(Result.Stats))
      .set("remarks", remarksSection(Result.Remarks))
      .set("statistics", statisticsSection(Result))
      .set("cache", cacheSection(CacheInfo))
      .set("resilience", resilienceSection())
      .set("multi_device", multiDeviceSection(MultiDevice))
      .set("kernels", std::move(KernelArray));
  return Doc;
}

void ompgpu::writeCompileReport(raw_ostream &OS, const json::Value &Report) {
  Report.write(OS);
  OS << '\n';
  OS.flush();
}

Error ompgpu::writeCompileReportFile(const std::string &Path,
                                     const json::Value &Report) {
  // Atomic write (temp + rename, support/FileSystem): an interrupted run
  // leaves either the previous report or the complete new one, never a
  // truncated JSON document that poisons the consumer.
  return writeTextFile(Path, Report.str() + "\n");
}
