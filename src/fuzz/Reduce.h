//===- fuzz/Reduce.h - Automatic failing-module reduction -------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Delta-debugging style reduction for modules the differential oracle
/// flagged. Starting from the generated (unoptimized) module, the reducer
/// repeatedly deletes unused functions, use-free instructions (in shrinking
/// chunks), and conditional-branch arms, keeping a mutation only when the
/// candidate still verifies clean *and* still reproduces the failure under
/// the caller's predicate. The shrunk module is then handed to the
/// opt-bisect driver to attribute the failure to one pass execution.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_FUZZ_REDUCE_H
#define OMPGPU_FUZZ_REDUCE_H

#include "driver/Bisect.h"
#include "fuzz/KernelGenerator.h"

#include <functional>
#include <memory>

namespace ompgpu {

/// Judges a reduction candidate in its generated (unoptimized) form.
/// Returns true when the candidate still reproduces the failure being
/// chased. Candidates that fail IR verification never reach the predicate.
using ReducePredicate = std::function<bool(const Module &)>;

struct ReduceOptions {
  /// Total predicate probes across all phases; each probe recompiles and
  /// reruns the candidate, so this bounds reduction cost.
  unsigned MaxProbes = 200;
};

/// Outcome of reduceFailingModule.
struct ReduceResult {
  /// The shrunk module, still failing under the predicate. Lives in the
  /// input module's IRContext, which must outlive it.
  std::unique_ptr<Module> Reduced;
  unsigned Probes = 0;
  unsigned DeletedFunctions = 0;
  unsigned DeletedInstructions = 0;
  unsigned SimplifiedBranches = 0;
  unsigned DeletedBlocks = 0;
  size_t OriginalInstructions = 0;
  size_t FinalInstructions = 0;
  /// OMP191 when the module shrank.
  RemarkCollector Remarks;
};

/// Reduces \p M — which must currently satisfy \p StillFailing — to a
/// smaller module that still does. Calls to __kmpc_target_init,
/// __kmpc_target_deinit, and __kmpc_barrier* are never deleted: removing
/// them can leave worker threads spinning in the state machine, hanging
/// the simulator instead of failing cleanly.
ReduceResult reduceFailingModule(const Module &M,
                                 const ReducePredicate &StillFailing,
                                 const ReduceOptions &Opts = ReduceOptions());

/// The standard differential predicate for one recipe under one preset:
/// a candidate still fails when its optimized compile breaks verification,
/// its optimized run traps, or its outputs diverge bit-for-bit from a run
/// of the same candidate compiled with the reference (link-only) pipeline.
/// Candidates whose *reference* form is broken are rejected — the mutation,
/// not the compiler, caused that failure.
ReducePredicate makeDifferentialPredicate(
    const KernelRecipe &R, const PipelineOptions &P,
    const std::vector<PipelineOptions::ExtraPass> &ExtraPasses = {});

/// Attributes the failure in \p Reduced to a single pass execution by
/// opt-bisecting \p P's pipeline (plus \p ExtraPasses) over clones of the
/// reduced module, with a gpusim differential run as the probe oracle.
BisectResult attributeFailure(
    const Module &Reduced, const KernelRecipe &R, const PipelineOptions &P,
    const std::vector<PipelineOptions::ExtraPass> &ExtraPasses = {});

} // namespace ompgpu

#endif // OMPGPU_FUZZ_REDUCE_H
