//===- fuzz/KernelGenerator.h - Random OpenMP kernel generator --*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generation of well-formed OpenMP device kernels through
/// the front-end helpers (OMPCodeGen/TargetRegionBuilder/CGHelpers),
/// sampling the paper's hazard space: escaping vs. non-escaping locals,
/// main-thread-only vs. worker allocations, nested parallel regions,
/// indirect parallel-region calls, and guarded side-effects with values
/// live-out of guards.
///
/// Every generated kernel has the fixed signature
///   void fuzz_kernel(ptr in, ptr out, i32 n)
/// and the invariant that out[i] depends only on (in, i, n) — thread and
/// team identifiers steer *which* thread computes an element, never the
/// element's value. That makes outputs comparable bit-for-bit across every
/// pipeline preset, execution-mode rewrite (SPMDzation), and state-machine
/// variant; a host-side model (expectedOutputs) provides the ground truth.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_FUZZ_KERNELGENERATOR_H
#define OMPGPU_FUZZ_KERNELGENERATOR_H

#include "frontend/OMPCodeGen.h"
#include "support/Error.h"
#include "support/JSON.h"

#include <cstdint>
#include <string>
#include <vector>

namespace ompgpu {

/// Everything needed to regenerate one kernel byte-identically. Sampled
/// from a seed, serialized as JSON into the corpus (docs/fuzzing.md
/// documents the schema), and replayed by seed or by file.
struct KernelRecipe {
  /// Region structure of the kernel's compute loops.
  enum class Shape : uint8_t {
    Combined,        ///< `distribute parallel for` (league-strided).
    DistributeInner, ///< `distribute` over chunks + inner `parallel for`.
    Flat,            ///< NumRegions sequential `parallel for` regions.
  };

  uint64_t Seed = 0; ///< The seed this recipe was sampled from.
  bool SPMD = true;  ///< SPMD vs. generic syntactic execution mode.
  int NumTeams = 2;
  int NumThreads = 32; ///< Generic mode requires 64 (workers = 64 - warp).
  int TripCount = 16;  ///< Elements; buffers are this many doubles.
  Shape RegionShape = Shape::Combined;
  int NumRegions = 1; ///< Sequential regions (Flat shape only; else 1).
  int NumChunks = 1;  ///< DistributeInner: TripCount must divide evenly.

  /// \name Hazard knobs (Sec. IV of the paper; Bercea et al. patterns)
  /// @{
  bool EscapingTeamLocal = false;    ///< Team-scope local, address taken,
                                     ///< captured by reference (globalized).
  bool NonEscapingTeamLocal = false; ///< Team-scope local, never escapes.
  bool WorkerLocal = false;          ///< Address-taken local allocated in
                                     ///< the parallel wrapper (worker side).
  bool GuardedSideEffect = false;    ///< Guarded compute with the value
                                     ///< live-out of the guard (CFG phi).
  bool NestedParallel = false;       ///< Hand-rolled nested parallel region
                                     ///< behind a __kmpc_parallel_level guard.
  bool IndirectParallelCall = false; ///< __kmpc_parallel_51 callee hidden
                                     ///< behind a select (unknown region).
  /// @}

  int ExprOps = 2;       ///< Arithmetic ops per region expression.
  uint64_t ExprSeed = 1; ///< Stream for expressions and input data.

  /// Deterministically samples a recipe from \p Seed.
  static KernelRecipe sample(uint64_t Seed);

  json::Value toJSON() const;
  static Expected<KernelRecipe> fromJSON(const json::Value &V);

  /// Compact one-line description, e.g. "seed=7 spmd teams=2x32 trip=16
  /// shape=flat/2 [esc,guard]".
  std::string summary() const;
};

/// Emits the recipe's kernel into \p CG's module under its configured
/// scheme. Returns the kernel function (named "fuzz_kernel").
Function *generateKernel(OMPCodeGen &CG, const KernelRecipe &R);

/// Deterministic input buffer (TripCount doubles) for the recipe.
std::vector<double> makeInputs(const KernelRecipe &R);

/// Host-side model of the generated kernel: the outputs any correct
/// compilation must produce, bit-for-bit, given makeInputs(R).
std::vector<double> expectedOutputs(const KernelRecipe &R,
                                    const std::vector<double> &In);

} // namespace ompgpu

#endif // OMPGPU_FUZZ_KERNELGENERATOR_H
