//===- fuzz/Reduce.cpp - Automatic failing-module reduction ----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reduce.h"
#include "fuzz/Oracle.h"
#include "ir/Module.h"
#include "ir/Verifier.h"
#include "support/Casting.h"
#include "transforms/Cloning.h"

#include <algorithm>

using namespace ompgpu;

namespace {

/// Position of one instruction, stable across cloneModule: clones preserve
/// function names, block order, and instruction order.
struct InstAddr {
  std::string Fn;
  size_t Block;
  size_t Inst;
};

} // namespace

static size_t countInstructions(const Module &M) {
  size_t N = 0;
  for (Function *F : M.functions())
    for (BasicBlock *BB : *F)
      N += BB->size();
  return N;
}

/// Calls whose removal can hang the simulator rather than fail it: without
/// target_init/deinit the generic-mode state machine never releases its
/// workers, and an unpaired barrier strands part of the block.
static bool isProtectedCall(const Instruction *I) {
  const auto *C = dyn_cast<CallInst>(I);
  if (!C)
    return false;
  const Function *Callee = C->getCalledFunction();
  if (!Callee)
    return false;
  const std::string &N = Callee->getName();
  return N == "__kmpc_target_init" || N == "__kmpc_target_deinit" ||
         N.rfind("__kmpc_barrier", 0) == 0;
}

static bool isDeletable(const Instruction *I) {
  return !I->isTerminator() && !I->hasUses() && !isProtectedCall(I);
}

/// Collects every deletable instruction, within each block in descending
/// index order so a contiguous chunk can be applied without invalidating
/// the remaining addresses.
static std::vector<InstAddr> collectDeletable(const Module &M) {
  std::vector<InstAddr> Addrs;
  for (Function *F : M.functions()) {
    std::vector<BasicBlock *> Blocks = F->getBlocks();
    for (size_t B = 0; B != Blocks.size(); ++B) {
      std::vector<Instruction *> Insts = Blocks[B]->getInstructions();
      for (size_t I = Insts.size(); I-- > 0;)
        if (isDeletable(Insts[I]))
          Addrs.push_back({F->getName(), B, I});
    }
  }
  return Addrs;
}

/// Deletes the addressed instructions in \p M (a clone of the module the
/// addresses were collected from). Returns false if any address no longer
/// names a deletable instruction.
static bool applyDeletions(Module &M, std::vector<InstAddr> Chunk) {
  // Highest index first within each block keeps lower addresses valid.
  std::sort(Chunk.begin(), Chunk.end(),
            [](const InstAddr &A, const InstAddr &B) {
              if (A.Fn != B.Fn)
                return A.Fn < B.Fn;
              if (A.Block != B.Block)
                return A.Block < B.Block;
              return A.Inst > B.Inst;
            });
  for (const InstAddr &A : Chunk) {
    Function *F = M.getFunction(A.Fn);
    if (!F)
      return false;
    std::vector<BasicBlock *> Blocks = F->getBlocks();
    if (A.Block >= Blocks.size())
      return false;
    std::vector<Instruction *> Insts = Blocks[A.Block]->getInstructions();
    if (A.Inst >= Insts.size() || !isDeletable(Insts[A.Inst]))
      return false;
    Insts[A.Inst]->eraseFromParent();
  }
  return true;
}

/// Erases blocks that became unreferenced (no branches or phis name them)
/// and whose instructions have no users outside the block itself. Iterates
/// to a fixpoint so chains of dropped blocks unravel.
static unsigned eraseDeadBlocks(Function &F) {
  unsigned Erased = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    std::vector<BasicBlock *> Blocks = F.getBlocks();
    for (size_t B = 1; B < Blocks.size(); ++B) { // never the entry block
      BasicBlock *BB = Blocks[B];
      if (BB->hasUses())
        continue;
      bool Escapes = false;
      for (Instruction *I : *BB) {
        for (User *U : I->users()) {
          auto *UI = dyn_cast<Instruction>(U);
          if (!UI || UI->getParent() != BB) {
            Escapes = true;
            break;
          }
        }
        if (Escapes)
          break;
      }
      if (Escapes)
        continue;
      F.eraseBlock(BB);
      ++Erased;
      Changed = true;
      break; // Blocks snapshot is stale; rescan.
    }
  }
  return Erased;
}

/// True when \p To is reachable from \p From along CFG successor edges.
static bool reaches(BasicBlock *From, BasicBlock *To) {
  std::vector<BasicBlock *> Worklist = {From};
  std::vector<BasicBlock *> Seen;
  while (!Worklist.empty()) {
    BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    if (BB == To)
      return true;
    if (std::find(Seen.begin(), Seen.end(), BB) != Seen.end())
      continue;
    Seen.push_back(BB);
    for (BasicBlock *Succ : BB->successors())
      Worklist.push_back(Succ);
  }
  return false;
}

/// Rewrites the conditional terminator of block \p BlockIdx in \p Fn to an
/// unconditional branch to successor \p Arm, retargets phis, and sweeps
/// newly dead blocks. Returns false if the address is not a conditional
/// branch (e.g. a prior accepted mutation restructured the function).
static bool simplifyBranch(Module &M, const std::string &Fn, size_t BlockIdx,
                           unsigned Arm, unsigned &ErasedBlocks) {
  Function *F = M.getFunction(Fn);
  if (!F)
    return false;
  std::vector<BasicBlock *> Blocks = F->getBlocks();
  if (BlockIdx >= Blocks.size())
    return false;
  BasicBlock *BB = Blocks[BlockIdx];
  auto *Br = dyn_cast_or_null<BrInst>(BB->getTerminator());
  if (!Br || !Br->isConditional())
    return false;

  BasicBlock *Keep = Br->getSuccessor(Arm);
  // Never collapse onto a path that can loop back here: the branch being
  // dropped may be the loop's only exit, and the simulator has no step
  // budget — an infinite loop hangs the whole reduction. (Conservative:
  // the surviving path might exit elsewhere, but the other arm is still
  // tried.)
  if (reaches(Keep, BB))
    return false;
  BasicBlock *Drop = Br->getSuccessor(1 - Arm);
  IRContext &Ctx = F->getContext();
  BB->insertBefore(new BrInst(Ctx, Keep), Br);
  Br->eraseFromParent();
  if (Drop != Keep)
    for (PhiInst *Phi : Drop->phis())
      Phi->removeIncomingBlock(BB);
  ErasedBlocks += eraseDeadBlocks(*F);
  return true;
}

ReduceResult ompgpu::reduceFailingModule(const Module &M,
                                         const ReducePredicate &StillFailing,
                                         const ReduceOptions &Opts) {
  ReduceResult R;
  R.OriginalInstructions = countInstructions(M);
  std::unique_ptr<Module> Cur = cloneModule(M);

  auto HaveBudget = [&] { return R.Probes < Opts.MaxProbes; };
  // Accepts a candidate only when it is structurally valid AND still fails.
  auto Try = [&](std::unique_ptr<Module> Cand) {
    ++R.Probes;
    if (verifyModule(*Cand))
      return false;
    if (!StillFailing(*Cand))
      return false;
    Cur = std::move(Cand);
    return true;
  };

  // Phase A: unused non-kernel function definitions.
  std::vector<std::string> Rejected;
  bool Scan = true;
  while (Scan && HaveBudget()) {
    Scan = false;
    for (Function *F : Cur->functions()) {
      if (F->isKernel() || F->isDeclaration() || F->hasUses())
        continue;
      if (std::find(Rejected.begin(), Rejected.end(), F->getName()) !=
          Rejected.end())
        continue;
      std::unique_ptr<Module> Cand = cloneModule(*Cur);
      Function *CF = Cand->getFunction(F->getName());
      size_t Removed = 0;
      for (BasicBlock *BB : *CF)
        Removed += BB->size();
      Cand->eraseFunction(CF);
      if (Try(std::move(Cand))) {
        ++R.DeletedFunctions;
        R.DeletedInstructions += (unsigned)Removed;
      } else {
        Rejected.push_back(F->getName());
      }
      Scan = true; // Cur (or Rejected) changed; re-snapshot and rescan.
      break;
    }
  }

  // Phase B: use-free instructions, in shrinking chunks. Deleting one
  // instruction can make its operands use-free, so re-collect after every
  // accepted chunk.
  size_t Chunk = std::max<size_t>(1, collectDeletable(*Cur).size() / 2);
  while (HaveBudget()) {
    std::vector<InstAddr> Addrs = collectDeletable(*Cur);
    if (Addrs.empty())
      break;
    Chunk = std::min(Chunk, Addrs.size());
    bool Progress = false;
    for (size_t Off = 0; Off < Addrs.size() && HaveBudget(); Off += Chunk) {
      size_t End = std::min(Off + Chunk, Addrs.size());
      std::vector<InstAddr> Slice(Addrs.begin() + (long)Off,
                                  Addrs.begin() + (long)End);
      std::unique_ptr<Module> Cand = cloneModule(*Cur);
      if (!applyDeletions(*Cand, Slice))
        continue;
      if (Try(std::move(Cand))) {
        R.DeletedInstructions += (unsigned)Slice.size();
        Progress = true;
        break; // Addresses are stale; re-collect.
      }
    }
    if (!Progress) {
      if (Chunk == 1)
        break;
      Chunk /= 2;
    }
  }

  // Phase C: collapse conditional branches to one arm and sweep the blocks
  // that die. The verifier rejects candidates whose phis this breaks.
  bool Changed = true;
  while (Changed && HaveBudget()) {
    Changed = false;
    std::vector<std::pair<std::string, size_t>> CondBrs;
    for (Function *F : Cur->functions()) {
      std::vector<BasicBlock *> Blocks = F->getBlocks();
      for (size_t B = 0; B != Blocks.size(); ++B) {
        auto *Br = dyn_cast_or_null<BrInst>(Blocks[B]->getTerminator());
        if (Br && Br->isConditional())
          CondBrs.push_back({F->getName(), B});
      }
    }
    for (const auto &[Fn, B] : CondBrs) {
      for (unsigned Arm = 0; Arm < 2 && HaveBudget(); ++Arm) {
        std::unique_ptr<Module> Cand = cloneModule(*Cur);
        unsigned Erased = 0;
        if (!simplifyBranch(*Cand, Fn, B, Arm, Erased))
          continue;
        if (Try(std::move(Cand))) {
          ++R.SimplifiedBranches;
          R.DeletedBlocks += Erased;
          Changed = true;
          break;
        }
      }
      if (Changed || !HaveBudget())
        break; // Block indices are stale; re-enumerate.
    }
  }

  R.FinalInstructions = countInstructions(*Cur);
  if (R.FinalInstructions < R.OriginalInstructions)
    R.Remarks.emit(RemarkId::OMP191, /*Missed=*/false, "fuzz_kernel",
                   "reduced failing module from " +
                       std::to_string(R.OriginalInstructions) + " to " +
                       std::to_string(R.FinalInstructions) +
                       " instructions (" + std::to_string(R.Probes) +
                       " probes)");
  R.Reduced = std::move(Cur);
  return R;
}

ReducePredicate ompgpu::makeDifferentialPredicate(
    const KernelRecipe &R, const PipelineOptions &P,
    const std::vector<PipelineOptions::ExtraPass> &ExtraPasses) {
  PipelineOptions Preset = P;
  Preset.Instrument.VerifyEach = true;
  Preset.Instrument.Recover = false;
  for (const PipelineOptions::ExtraPass &E : ExtraPasses)
    Preset.ExtraPasses.push_back(E);
  return [R, Preset](const Module &Cand) {
    std::unique_ptr<Module> Opt = cloneModule(Cand);
    CompileResult CR = optimizeDeviceModule(*Opt, Preset);
    if (CR.VerifyFailed)
      return true; // The compile still corrupts this candidate.

    // The candidate must be healthy in its reference form, or the mutation
    // (not the compiler) broke it.
    std::unique_ptr<Module> Ref = cloneModule(Cand);
    PipelineOptions RefP = referenceFuzzPipeline(Preset);
    CompileResult RefCR = optimizeDeviceModule(*Ref, RefP);
    if (RefCR.VerifyFailed)
      return false;
    FuzzRunOutcome RefRun = runGeneratedKernel(*Ref, "fuzz_kernel", R, RefP);
    if (!RefRun.Stats.ok())
      return false;

    FuzzRunOutcome OptRun = runGeneratedKernel(*Opt, "fuzz_kernel", R, Preset);
    if (!OptRun.Stats.ok())
      return true;
    return !compareOutputs(RefRun.Out, OptRun.Out, /*RelTol=*/0.0).Match;
  };
}

BisectResult ompgpu::attributeFailure(
    const Module &Reduced, const KernelRecipe &R, const PipelineOptions &P,
    const std::vector<PipelineOptions::ExtraPass> &ExtraPasses) {
  // Ground truth once, from the reference compile of the reduced module.
  std::unique_ptr<Module> Ref = cloneModule(Reduced);
  PipelineOptions RefP = referenceFuzzPipeline(P);
  optimizeDeviceModule(*Ref, RefP);
  FuzzRunOutcome RefRun = runGeneratedKernel(*Ref, "fuzz_kernel", R, RefP);
  bool RefOK = RefRun.Stats.ok();

  PipelineOptions Opts = P;
  for (const PipelineOptions::ExtraPass &E : ExtraPasses)
    Opts.ExtraPasses.push_back(E);

  // Probe modules live in the reduced module's IRContext (cloneModule
  // clones into the source context); the per-probe context goes unused.
  BisectModuleFactory Factory = [&Reduced](IRContext &) {
    return cloneModule(Reduced);
  };
  BisectOracle Oracle = [&R, &RefRun, RefOK, &Opts](Module &M,
                                                    const CompileResult &) {
    FuzzRunOutcome Run = runGeneratedKernel(M, "fuzz_kernel", R, Opts);
    if (!Run.Stats.ok())
      return false;
    return !RefOK || compareOutputs(RefRun.Out, Run.Out, /*RelTol=*/0.0).Match;
  };
  return runOptBisect(Factory, Opts, Oracle);
}
