//===- fuzz/Corpus.cpp - Fuzzing corpus persistence ------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

using namespace ompgpu;

Error ompgpu::saveRecipe(const std::string &Path, const KernelRecipe &R) {
  return writeTextFile(Path, R.toJSON().str() + "\n");
}

Expected<KernelRecipe> ompgpu::loadRecipe(const std::string &Path) {
  Expected<std::string> Text = readTextFile(Path);
  if (!Text)
    return Text.takeError();
  json::Value V;
  std::string Err;
  if (!json::parse(*Text, V, &Err))
    return Error::failure("malformed recipe '" + Path + "': " + Err);
  return KernelRecipe::fromJSON(V);
}

json::Value ompgpu::corpusToJSON(const std::vector<CorpusEntry> &Entries) {
  json::Value Cases = json::Value::makeArray();
  for (const CorpusEntry &E : Entries) {
    json::Value C = json::Value::makeObject();
    C.set("seed", E.Seed);
    C.set("ok", E.OK);
    if (!E.OK) {
      C.set("failing_preset", E.FailingPreset);
      C.set("reason", E.Reason);
      C.set("case_file", E.CaseFile);
    }
    Cases.push_back(std::move(C));
  }
  json::Value V = json::Value::makeObject();
  V.set("schema_version", 1);
  V.set("cases", std::move(Cases));
  return V;
}

Expected<std::vector<CorpusEntry>>
ompgpu::corpusFromJSON(const json::Value &V) {
  if (!V.isObject() || !V.at("cases").isArray())
    return Error::failure("corpus JSON: missing 'cases' array");
  std::vector<CorpusEntry> Entries;
  for (const json::Value &C : V.at("cases").elements()) {
    if (!C.isObject())
      return Error::failure("corpus JSON: case is not an object");
    CorpusEntry E;
    E.Seed = (uint64_t)C.at("seed").asInt();
    E.OK = C.at("ok").asBool();
    if (const json::Value *P = C.find("failing_preset"))
      E.FailingPreset = P->asString();
    if (const json::Value *R = C.find("reason"))
      E.Reason = R->asString();
    if (const json::Value *F = C.find("case_file"))
      E.CaseFile = F->asString();
    Entries.push_back(std::move(E));
  }
  return Entries;
}

Error ompgpu::saveCorpus(const std::string &Path,
                         const std::vector<CorpusEntry> &Entries) {
  return writeTextFile(Path, corpusToJSON(Entries).str() + "\n");
}

Expected<std::vector<CorpusEntry>>
ompgpu::loadCorpus(const std::string &Path) {
  Expected<std::string> Text = readTextFile(Path);
  if (!Text)
    return Text.takeError();
  json::Value V;
  std::string Err;
  if (!json::parse(*Text, V, &Err))
    return Error::failure("malformed corpus '" + Path + "': " + Err);
  return corpusFromJSON(V);
}
