//===- fuzz/Corpus.cpp - Fuzzing corpus persistence ------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include <cstdio>
#include <filesystem>

using namespace ompgpu;

Error ompgpu::writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return Error::failure("cannot open '" + Path + "' for writing");
  size_t Written = std::fwrite(Text.data(), 1, Text.size(), F);
  bool CloseOK = std::fclose(F) == 0;
  if (Written != Text.size() || !CloseOK)
    return Error::failure("short write to '" + Path + "'");
  return Error::success();
}

Expected<std::string> ompgpu::readTextFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Error::failure("cannot open '" + Path + "' for reading");
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  bool ReadOK = std::ferror(F) == 0;
  std::fclose(F);
  if (!ReadOK)
    return Error::failure("read error on '" + Path + "'");
  return Text;
}

Error ompgpu::ensureDirectory(const std::string &Path) {
  std::error_code EC;
  std::filesystem::create_directories(Path, EC);
  if (EC)
    return Error::failure("cannot create directory '" + Path +
                          "': " + EC.message());
  return Error::success();
}

Error ompgpu::saveRecipe(const std::string &Path, const KernelRecipe &R) {
  return writeTextFile(Path, R.toJSON().str() + "\n");
}

Expected<KernelRecipe> ompgpu::loadRecipe(const std::string &Path) {
  Expected<std::string> Text = readTextFile(Path);
  if (!Text)
    return Text.takeError();
  json::Value V;
  std::string Err;
  if (!json::parse(*Text, V, &Err))
    return Error::failure("malformed recipe '" + Path + "': " + Err);
  return KernelRecipe::fromJSON(V);
}

json::Value ompgpu::corpusToJSON(const std::vector<CorpusEntry> &Entries) {
  json::Value Cases = json::Value::makeArray();
  for (const CorpusEntry &E : Entries) {
    json::Value C = json::Value::makeObject();
    C.set("seed", E.Seed);
    C.set("ok", E.OK);
    if (!E.OK) {
      C.set("failing_preset", E.FailingPreset);
      C.set("reason", E.Reason);
      C.set("case_file", E.CaseFile);
    }
    Cases.push_back(std::move(C));
  }
  json::Value V = json::Value::makeObject();
  V.set("schema_version", 1);
  V.set("cases", std::move(Cases));
  return V;
}

Expected<std::vector<CorpusEntry>>
ompgpu::corpusFromJSON(const json::Value &V) {
  if (!V.isObject() || !V.at("cases").isArray())
    return Error::failure("corpus JSON: missing 'cases' array");
  std::vector<CorpusEntry> Entries;
  for (const json::Value &C : V.at("cases").elements()) {
    if (!C.isObject())
      return Error::failure("corpus JSON: case is not an object");
    CorpusEntry E;
    E.Seed = (uint64_t)C.at("seed").asInt();
    E.OK = C.at("ok").asBool();
    if (const json::Value *P = C.find("failing_preset"))
      E.FailingPreset = P->asString();
    if (const json::Value *R = C.find("reason"))
      E.Reason = R->asString();
    if (const json::Value *F = C.find("case_file"))
      E.CaseFile = F->asString();
    Entries.push_back(std::move(E));
  }
  return Entries;
}

Error ompgpu::saveCorpus(const std::string &Path,
                         const std::vector<CorpusEntry> &Entries) {
  return writeTextFile(Path, corpusToJSON(Entries).str() + "\n");
}

Expected<std::vector<CorpusEntry>>
ompgpu::loadCorpus(const std::string &Path) {
  Expected<std::string> Text = readTextFile(Path);
  if (!Text)
    return Text.takeError();
  json::Value V;
  std::string Err;
  if (!json::parse(*Text, V, &Err))
    return Error::failure("malformed corpus '" + Path + "': " + Err);
  return corpusFromJSON(V);
}
