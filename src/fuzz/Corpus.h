//===- fuzz/Corpus.h - Fuzzing corpus persistence ---------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// File persistence for the fuzzing subsystem: recipes as JSON (replayable
/// byte-identically from the seed and knobs alone), and a corpus summary
/// indexing every case a campaign ran with its verdict. The nightly CI job
/// uploads the corpus directory as an artifact; docs/fuzzing.md documents
/// the layout.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_FUZZ_CORPUS_H
#define OMPGPU_FUZZ_CORPUS_H

#include "fuzz/KernelGenerator.h"

namespace ompgpu {

/// One campaign case in the corpus summary (corpus.json).
struct CorpusEntry {
  uint64_t Seed = 0;
  bool OK = true;
  std::string FailingPreset; ///< "" when OK.
  std::string Reason;        ///< "" when OK.
  std::string CaseFile;      ///< Recipe JSON filename, relative to the
                             ///< corpus directory ("" when OK).
};

/// \name Plain text file IO
/// raw_fd_ostream silently falls back to stderr when a path cannot be
/// opened, which would corrupt a corpus without failing the run; these
/// helpers report errors instead.
/// @{
Error writeTextFile(const std::string &Path, const std::string &Text);
Expected<std::string> readTextFile(const std::string &Path);
/// Creates \p Path (and parents) if absent.
Error ensureDirectory(const std::string &Path);
/// @}

/// \name Recipe files
/// @{
Error saveRecipe(const std::string &Path, const KernelRecipe &R);
Expected<KernelRecipe> loadRecipe(const std::string &Path);
/// @}

/// \name Corpus summary
/// @{
json::Value corpusToJSON(const std::vector<CorpusEntry> &Entries);
Expected<std::vector<CorpusEntry>> corpusFromJSON(const json::Value &V);
Error saveCorpus(const std::string &Path,
                 const std::vector<CorpusEntry> &Entries);
Expected<std::vector<CorpusEntry>> loadCorpus(const std::string &Path);
/// @}

} // namespace ompgpu

#endif // OMPGPU_FUZZ_CORPUS_H
