//===- fuzz/Corpus.h - Fuzzing corpus persistence ---------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// File persistence for the fuzzing subsystem: recipes as JSON (replayable
/// byte-identically from the seed and knobs alone), and a corpus summary
/// indexing every case a campaign ran with its verdict. The nightly CI job
/// uploads the corpus directory as an artifact; docs/fuzzing.md documents
/// the layout.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_FUZZ_CORPUS_H
#define OMPGPU_FUZZ_CORPUS_H

#include "fuzz/KernelGenerator.h"
#include "support/FileSystem.h"

namespace ompgpu {

/// One campaign case in the corpus summary (corpus.json).
struct CorpusEntry {
  uint64_t Seed = 0;
  bool OK = true;
  std::string FailingPreset; ///< "" when OK.
  std::string Reason;        ///< "" when OK.
  std::string CaseFile;      ///< Recipe JSON filename, relative to the
                             ///< corpus directory ("" when OK).
};

// Plain-text file IO (writeTextFile / readTextFile / ensureDirectory)
// moved to support/FileSystem.h so the compile cache shares it; writes are
// now atomic (temp + rename), which is what keeps an interrupted nightly
// run from leaving a truncated corpus.json behind.

/// \name Recipe files
/// @{
Error saveRecipe(const std::string &Path, const KernelRecipe &R);
Expected<KernelRecipe> loadRecipe(const std::string &Path);
/// @}

/// \name Corpus summary
/// @{
json::Value corpusToJSON(const std::vector<CorpusEntry> &Entries);
Expected<std::vector<CorpusEntry>> corpusFromJSON(const json::Value &V);
Error saveCorpus(const std::string &Path,
                 const std::vector<CorpusEntry> &Entries);
Expected<std::vector<CorpusEntry>> loadCorpus(const std::string &Path);
/// @}

} // namespace ompgpu

#endif // OMPGPU_FUZZ_CORPUS_H
