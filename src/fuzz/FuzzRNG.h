//===- fuzz/FuzzRNG.h - Deterministic fuzzing RNG ---------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A splitmix64 generator for the fuzzing subsystem. <random> engines and
/// distributions are implementation-defined across standard libraries, so
/// a corpus recorded on one toolchain would not replay byte-identically on
/// another; this fixed algorithm keeps recipes portable (docs/fuzzing.md).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_FUZZ_FUZZRNG_H
#define OMPGPU_FUZZ_FUZZRNG_H

#include <cstdint>

namespace ompgpu {

/// splitmix64: tiny, fast, and fully specified. Identical seeds produce
/// identical streams on every platform.
class FuzzRNG {
  uint64_t State;

public:
  explicit FuzzRNG(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform-ish value in [0, N). The modulo bias is irrelevant at
  /// fuzzing's N (< 2^32) and keeps the mapping trivially portable.
  uint64_t next(uint64_t N) { return N ? next() % N : 0; }

  /// Uniform-ish integer in [Lo, Hi] (inclusive).
  int nextInt(int Lo, int Hi) {
    return Lo + (int)next((uint64_t)(Hi - Lo + 1));
  }

  /// True with probability PercentTrue/100.
  bool nextBool(unsigned PercentTrue = 50) {
    return next(100) < PercentTrue;
  }
};

} // namespace ompgpu

#endif // OMPGPU_FUZZ_FUZZRNG_H
