//===- fuzz/Oracle.cpp - Cross-preset differential oracle ------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"
#include "driver/Presets.h"
#include "gpusim/Device.h"
#include "ir/IRContext.h"
#include "ir/Module.h"
#include "resilience/FaultInjector.h"
#include "rtl/DeviceRTL.h"

#include <stdexcept>

using namespace ompgpu;

std::vector<PipelineOptions> ompgpu::defaultFuzzPresets() {
  return fuzzPresetMatrix();
}

FuzzRunOutcome ompgpu::runGeneratedKernel(Module &M,
                                          const std::string &KernelName,
                                          const KernelRecipe &R,
                                          const PipelineOptions &P) {
  FuzzRunOutcome O;
  Function *Kernel = M.getFunction(KernelName);
  if (!Kernel) {
    O.Stats.Trap = "kernel '" + KernelName + "' not found";
    return O;
  }

  GPUDevice Dev(P.Arch.Machine);
  std::vector<double> In = makeInputs(R);
  std::vector<double> Zero((size_t)R.TripCount, 0.0);
  uint64_t DevIn = Dev.allocateArray(In);
  uint64_t DevOut = Dev.allocateArray(Zero);

  LaunchConfig LC;
  LC.GridDim = (unsigned)R.NumTeams;
  LC.BlockDim = (unsigned)R.NumThreads;
  LC.Flavor = P.Flavor;
  LC.MaxSimulatedBlocks = 0;
  // Watchdog: a hung or runaway simulation becomes a recoverable
  // watchdog_timeout trap (OMP220) instead of hanging the campaign.
  LC.CycleBudget = FuzzSimCycleBudget;

  NativeRuntimeBinding RTL =
      makeOpenMPRuntimeBinding(P.Flavor, Dev.getMachine());
  O.Stats = Dev.launchKernel(M, Kernel, LC,
                             {DevIn, DevOut, (uint64_t)R.TripCount}, RTL);
  if (O.Stats.ok())
    O.Out = Dev.downloadArray<double>(DevOut, (size_t)R.TripCount);
  return O;
}

PipelineOptions ompgpu::referenceFuzzPipeline(const PipelineOptions &P) {
  PipelineOptions Ref = P;
  Ref.Name = P.Name + " (reference)";
  Ref.RunOpenMPOpt = false;
  Ref.RunCleanups = false;
  Ref.ExtraPasses.clear();
  Ref.Instrument = PassInstrumentationOptions();
  return Ref;
}

std::string ompgpu::emitFuzzKernel(Module &M, const KernelRecipe &R,
                                   const PipelineOptions &Preset) {
  OMPCodeGen CG(M, CodeGenOptions{Preset.Scheme, /*CudaMode=*/false});
  return generateKernel(CG, R)->getName();
}

PipelineOptions ompgpu::effectiveFuzzPipeline(const PipelineOptions &Preset,
                                              const FuzzOracleOptions &O) {
  PipelineOptions P = Preset;
  P.Instrument.VerifyEach = O.VerifyEach;
  P.RunLint = O.Lint;
  P.Lint = O.LintOpts;
  for (const PipelineOptions::ExtraPass &E : O.ExtraPasses)
    P.ExtraPasses.push_back(E);
  return P;
}

FuzzPresetOutcome ompgpu::judgeCompiledPreset(const KernelRecipe &R,
                                              const PipelineOptions &Preset,
                                              Module &M,
                                              const std::string &KernelName,
                                              const CompileResult &CR) {
  FuzzPresetOutcome Res;
  Res.Preset = Preset.Name;
  if (FaultInjector::instance().shouldFire(faultsite::OracleVerdict))
    throw std::runtime_error("injected fault: oracle.verdict stage failure");
  Res.VerifyFailed = CR.VerifyFailed;
  Res.VerifyError = CR.VerifyError;
  Res.RecoveryEvents = (unsigned)CR.Recoveries.size();
  if (Res.VerifyFailed) {
    Res.Reason = "verifier: " + CR.VerifyError +
                 (CR.FirstCorruptPass.empty()
                      ? ""
                      : " (after pass '" + CR.FirstCorruptPass + "')");
    return Res;
  }
  if (Res.RecoveryEvents) {
    // The oracle runs without recovery; events mean someone enabled it and
    // a pass still misbehaved — that is a finding, not a pass.
    Res.Reason = "pass recovery events during compile";
    return Res;
  }
  Res.LintFindings = CR.LintFindings;
  if (!Res.LintFindings.empty()) {
    // A racy module can still produce bit-identical outputs under the
    // simulator's deterministic schedule, so the lint verdict overrides
    // the (possibly clean) differential comparison.
    Res.Reason = "lint: " + Res.LintFindings.front().str();
    if (Res.LintFindings.size() > 1)
      Res.Reason += " (+" + std::to_string(Res.LintFindings.size() - 1) +
                    " more finding(s))";
    return Res;
  }

  // Reference: regenerate the recipe's kernel (deterministic, so this is
  // the pre-compile module) and compile link-RTL only, same scheme and
  // flavor.
  IRContext RefCtx;
  Module Ref(RefCtx, "fuzz-ref");
  emitFuzzKernel(Ref, R, Preset);
  CompileResult RefCR = optimizeDeviceModule(Ref, referenceFuzzPipeline(Preset));
  if (RefCR.VerifyFailed) {
    Res.ReferenceBroken = true;
    Res.Reason = "generator produced invalid IR: " + RefCR.VerifyError;
    return Res;
  }

  FuzzRunOutcome Opt = runGeneratedKernel(M, KernelName, R, Preset);
  FuzzRunOutcome RefRun = runGeneratedKernel(Ref, KernelName, R, Preset);
  Res.OptimizedTrap = Opt.Stats.Trap;
  Res.ReferenceTrap = RefRun.Stats.Trap;
  Res.WatchdogTimeout =
      Opt.Stats.WatchdogTimeout || RefRun.Stats.WatchdogTimeout;
  if (!RefRun.Stats.ok()) {
    Res.ReferenceBroken = true;
    Res.Reason = "reference run failed: " +
                 (RefRun.Stats.Trap.empty() ? std::string("out of memory")
                                            : RefRun.Stats.Trap);
    return Res;
  }
  if (!Opt.Stats.ok()) {
    Res.Reason = "optimized run failed: " +
                 (Opt.Stats.Trap.empty() ? std::string("out of memory")
                                         : Opt.Stats.Trap);
    return Res;
  }

  std::vector<double> Host = expectedOutputs(R, makeInputs(R));
  Res.HostCompare = compareOutputs(Host, Opt.Out, /*RelTol=*/0.0);
  Res.RefCompare = compareOutputs(RefRun.Out, Opt.Out, /*RelTol=*/0.0);
  if (!Res.HostCompare.Match) {
    Res.Reason = "outputs diverge from host model: " +
                 Res.HostCompare.message();
    return Res;
  }
  if (!Res.RefCompare.Match) {
    Res.Reason = "outputs diverge from unoptimized reference: " +
                 Res.RefCompare.message();
    return Res;
  }

  Res.OK = true;
  return Res;
}

json::Value ompgpu::fuzzPresetOutcomeToJSON(const FuzzPresetOutcome &P) {
  json::Value LintMessages = json::Value::makeArray();
  for (const LintFinding &F : P.LintFindings)
    LintMessages.push_back(json::Value(F.str()));
  json::Value V = json::Value::makeObject();
  V.set("preset", P.Preset)
      .set("ok", P.OK)
      .set("reason", P.Reason)
      .set("verify_failed", P.VerifyFailed)
      .set("verify_error", P.VerifyError)
      .set("reference_broken", P.ReferenceBroken)
      .set("optimized_trap", P.OptimizedTrap)
      .set("reference_trap", P.ReferenceTrap)
      .set("recovery_events", P.RecoveryEvents)
      .set("lint_findings", std::move(LintMessages));
  // Emitted only when set: pre-watchdog artifacts stay byte-identical, and
  // so do injection-disabled chaos runs compared against plain runs.
  if (P.WatchdogTimeout)
    V.set("watchdog_timeout", true);
  return V;
}

Expected<FuzzPresetOutcome>
ompgpu::fuzzPresetOutcomeFromJSON(const json::Value &V) {
  if (!V.isObject() || !V.find("preset") || !V.find("ok"))
    return Error::failure("preset outcome JSON: not an outcome object");
  FuzzPresetOutcome P;
  P.Preset = V.at("preset").asString();
  P.OK = V.at("ok").asBool();
  if (const json::Value *F = V.find("reason"))
    P.Reason = F->asString();
  if (const json::Value *F = V.find("verify_failed"))
    P.VerifyFailed = F->asBool();
  if (const json::Value *F = V.find("verify_error"))
    P.VerifyError = F->asString();
  if (const json::Value *F = V.find("reference_broken"))
    P.ReferenceBroken = F->asBool();
  if (const json::Value *F = V.find("optimized_trap"))
    P.OptimizedTrap = F->asString();
  if (const json::Value *F = V.find("reference_trap"))
    P.ReferenceTrap = F->asString();
  if (const json::Value *F = V.find("recovery_events"))
    P.RecoveryEvents = (unsigned)F->asInt();
  if (const json::Value *F = V.find("watchdog_timeout"))
    P.WatchdogTimeout = F->asBool();
  return P;
}

/// Runs one preset for one recipe end to end: generate (per-preset
/// scheme), compile under the oracle's effective pipeline, judge.
static FuzzPresetOutcome judgePreset(const KernelRecipe &R,
                                     const PipelineOptions &Preset,
                                     const FuzzOracleOptions &O) {
  IRContext Ctx;
  Module M(Ctx, "fuzz");
  std::string KernelName = emitFuzzKernel(M, R, Preset);
  CompileResult CR = optimizeDeviceModule(M, effectiveFuzzPipeline(Preset, O));
  return judgeCompiledPreset(R, Preset, M, KernelName, CR);
}

FuzzVerdict ompgpu::runFuzzOracle(const KernelRecipe &R,
                                  const FuzzOracleOptions &O) {
  FuzzVerdict V;
  std::vector<PipelineOptions> Presets =
      O.Presets.empty() ? defaultFuzzPresets() : O.Presets;
  for (const PipelineOptions &P : Presets) {
    FuzzPresetOutcome Res = judgePreset(R, P, O);
    if (!Res.OK) {
      if (V.OK) {
        V.OK = false;
        V.FailingPreset = Res.Preset;
        V.Reason = Res.Reason;
      }
      V.Remarks.emit(RemarkId::OMP190, /*Missed=*/true, "fuzz_kernel",
                     "differential oracle mismatch under preset '" +
                         Res.Preset + "': " + Res.Reason + " (" +
                         R.summary() + ")");
    }
    V.Presets.push_back(std::move(Res));
  }
  return V;
}
