//===- fuzz/Oracle.h - Cross-preset differential oracle ---------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential testing oracle: regenerate one recipe's kernel under
/// every pipeline preset (the front-end scheme differs per preset), compile
/// it, and judge the result against two references — the host-side model
/// (expectedOutputs) and a gpusim run of the same module with every
/// optimization disabled. Verifier state, traps, recovery events, and
/// bit-exact output divergence are all failures; each failing preset emits
/// an OMP190 remark.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_FUZZ_ORACLE_H
#define OMPGPU_FUZZ_ORACLE_H

#include "driver/Pipeline.h"
#include "fuzz/KernelGenerator.h"
#include "gpusim/KernelStats.h"
#include "support/Error.h"
#include "support/JSON.h"
#include "support/OutputCompare.h"

namespace ompgpu {

/// One preset's judgment for one recipe.
struct FuzzPresetOutcome {
  std::string Preset;
  bool OK = false;
  std::string Reason; ///< Empty when OK; one line otherwise.

  bool VerifyFailed = false;
  std::string VerifyError;
  /// Findings of the per-preset OMPLint run over the optimized module
  /// (empty when clean or linting disabled). Any finding fails the preset:
  /// a race can produce bit-identical outputs on the simulator's
  /// deterministic schedule, so the differential comparison alone misses it.
  std::vector<LintFinding> LintFindings;
  bool ReferenceBroken = false; ///< The *unoptimized* run failed: the
                                ///< generator (not a pass) is at fault.
  std::string OptimizedTrap;
  std::string ReferenceTrap;
  OutputComparison HostCompare; ///< optimized vs. expectedOutputs
  OutputComparison RefCompare;  ///< optimized vs. unoptimized module run
  unsigned RecoveryEvents = 0;
  /// A simulated run hit the FuzzSimCycleBudget watchdog (OMP220): the
  /// kernel hung or ran away and was converted into a recoverable timeout
  /// trap instead of hanging the campaign. The compile service treats
  /// this as transient and retries under its ResiliencePolicy.
  bool WatchdogTimeout = false;
};

/// The oracle's verdict over all presets.
struct FuzzVerdict {
  bool OK = true;
  std::string FailingPreset; ///< First failing preset ("" when OK).
  std::string Reason;
  std::vector<FuzzPresetOutcome> Presets;
  RemarkCollector Remarks; ///< OMP190 per failing preset.
};

struct FuzzOracleOptions {
  /// Presets to test; empty means defaultFuzzPresets().
  std::vector<PipelineOptions> Presets;
  /// Verify the module after every pass so corruption is attributed early.
  bool VerifyEach = true;
  /// Run OMPLint on every preset's optimized module; findings fail the
  /// preset even when both differential comparisons match.
  bool Lint = true;
  LintOptions LintOpts;
  /// Extra passes spliced into every preset's pipeline — the sabotage
  /// injection point used by tests (TestRecovery-style hooks).
  std::vector<PipelineOptions::ExtraPass> ExtraPasses;
};

/// The preset matrix the fuzzer checks: the LLVM 12 baseline, the dev
/// branch with optimizations off, the full dev pipeline, and the dev
/// pipeline with SPMDzation / globalization subsets disabled.
std::vector<PipelineOptions> defaultFuzzPresets();

/// Watchdog cycle budget armed on every fuzz simulation
/// (LaunchConfig::CycleBudget): generously above any legitimate generated
/// kernel (which finishes in well under a million cycles), so only a hung
/// or runaway simulation trips it — and does so as a recoverable
/// watchdog_timeout trap (OMP220, docs/resilience.md) instead of hanging
/// the campaign.
inline constexpr uint64_t FuzzSimCycleBudget = 100000000;

/// \name Service-compatible building blocks
/// The oracle decomposes into emit / compile / judge so the compile
/// service (src/service) can run the compile step — and cache the
/// judgment — per (recipe, preset) job: Emit = emitFuzzKernel, the
/// pipeline = effectiveFuzzPipeline, Evaluate = judgeCompiledPreset
/// serialized via fuzzPresetOutcomeToJSON. See docs/compile-service.md.
/// @{

/// Emits \p R's kernel into \p M under \p Preset's front-end scheme and
/// returns the kernel name. Deterministic: the same recipe and scheme
/// always produce byte-identical IR (which is what makes the compile
/// cacheable by IR hash).
std::string emitFuzzKernel(Module &M, const KernelRecipe &R,
                           const PipelineOptions &Preset);

/// The pipeline the oracle actually compiles \p Preset under: VerifyEach,
/// lint switches, and injected extra passes applied from \p O.
PipelineOptions effectiveFuzzPipeline(const PipelineOptions &Preset,
                                      const FuzzOracleOptions &O);

/// Judges one already-compiled preset: verifier/recovery/lint verdicts
/// from \p CR, then the differential comparison of \p M's kernel against
/// the host model and against a freshly regenerated unoptimized reference
/// (the generator is deterministic, so regeneration equals the
/// pre-compile clone the monolithic oracle used).
FuzzPresetOutcome judgeCompiledPreset(const KernelRecipe &R,
                                      const PipelineOptions &Preset,
                                      Module &M,
                                      const std::string &KernelName,
                                      const CompileResult &CR);

/// Serializes the judgment fields of \p P (preset, verdict, reason,
/// verifier/trap/recovery details, lint messages). Lint findings
/// round-trip as messages only; fromJSON leaves structured
/// FuzzPresetOutcome::LintFindings empty (the Reason line already carries
/// the lint summary the campaign reports).
json::Value fuzzPresetOutcomeToJSON(const FuzzPresetOutcome &P);
Expected<FuzzPresetOutcome> fuzzPresetOutcomeFromJSON(const json::Value &V);
/// @}

/// Strips \p P down to its reference form: same scheme and runtime flavor,
/// but no openmp-opt, no cleanups, no injected passes — the compile only
/// links the device runtime. Shared by the oracle, the reducer, and
/// failure attribution.
PipelineOptions referenceFuzzPipeline(const PipelineOptions &P);

/// Launches the already-compiled \p KernelName of \p M on the recipe's
/// deterministic inputs (grid = NumTeams x NumThreads, runtime flavor from
/// \p P). Building block shared by the oracle, the reducer, and bisection.
struct FuzzRunOutcome {
  KernelStats Stats;
  std::vector<double> Out;
};
FuzzRunOutcome runGeneratedKernel(Module &M, const std::string &KernelName,
                                  const KernelRecipe &R,
                                  const PipelineOptions &P);

/// Runs the full differential oracle for one recipe.
FuzzVerdict runFuzzOracle(const KernelRecipe &R,
                          const FuzzOracleOptions &O = FuzzOracleOptions());

} // namespace ompgpu

#endif // OMPGPU_FUZZ_ORACLE_H
