//===- fuzz/KernelGenerator.cpp - Random OpenMP kernel generator -----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/KernelGenerator.h"
#include "fuzz/FuzzRNG.h"
#include "ir/IRContext.h"
#include "support/Casting.h"

#include <sstream>

using namespace ompgpu;

//===----------------------------------------------------------------------===//
// Recipe sampling / serialization
//===----------------------------------------------------------------------===//

KernelRecipe KernelRecipe::sample(uint64_t Seed) {
  // Scramble so consecutive seeds give unrelated recipes.
  FuzzRNG Rng(Seed * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);

  KernelRecipe R;
  R.Seed = Seed;
  R.SPMD = Rng.nextBool(60);
  R.NumTeams = Rng.nextInt(1, 3);
  // Generic kernels need workers: the runtime reserves one warp for the
  // main thread, so a 32-thread generic block would have zero workers.
  R.NumThreads = R.SPMD ? (Rng.nextBool() ? 32 : 64) : 64;

  switch (Rng.next(3)) {
  case 0:
    R.RegionShape = Shape::Combined;
    break;
  case 1:
    R.RegionShape = Shape::DistributeInner;
    break;
  default:
    R.RegionShape = Shape::Flat;
    break;
  }
  R.NumRegions = R.RegionShape == Shape::Flat ? Rng.nextInt(1, 2) : 1;
  if (R.RegionShape == Shape::DistributeInner) {
    R.NumChunks = Rng.nextBool() ? 2 : 4;
    int ChunkSize = 4 * Rng.nextInt(1, 3); // 4, 8, or 12
    R.TripCount = R.NumChunks * ChunkSize;
  } else {
    R.NumChunks = 1;
    R.TripCount = 8 * Rng.nextInt(1, 4); // 8..32
  }

  R.EscapingTeamLocal = Rng.nextBool(40);
  R.NonEscapingTeamLocal = Rng.nextBool(40);
  R.WorkerLocal = Rng.nextBool(40);
  R.GuardedSideEffect = Rng.nextBool(40);
  R.NestedParallel = Rng.nextBool(25);
  R.IndirectParallelCall = Rng.nextBool(25);
  R.ExprOps = Rng.nextInt(1, 3);
  R.ExprSeed = Rng.next();
  return R;
}

static std::string shapeName(KernelRecipe::Shape S) {
  switch (S) {
  case KernelRecipe::Shape::Combined:
    return "combined";
  case KernelRecipe::Shape::DistributeInner:
    return "distribute-inner";
  case KernelRecipe::Shape::Flat:
    return "flat";
  }
  return "combined";
}

json::Value KernelRecipe::toJSON() const {
  json::Value V = json::Value::makeObject();
  V.set("seed", Seed);
  V.set("spmd", SPMD);
  V.set("num_teams", NumTeams);
  V.set("num_threads", NumThreads);
  V.set("trip_count", TripCount);
  V.set("shape", shapeName(RegionShape));
  V.set("num_regions", NumRegions);
  V.set("num_chunks", NumChunks);
  V.set("escaping_team_local", EscapingTeamLocal);
  V.set("non_escaping_team_local", NonEscapingTeamLocal);
  V.set("worker_local", WorkerLocal);
  V.set("guarded_side_effect", GuardedSideEffect);
  V.set("nested_parallel", NestedParallel);
  V.set("indirect_parallel_call", IndirectParallelCall);
  V.set("expr_ops", ExprOps);
  V.set("expr_seed", ExprSeed);
  return V;
}

Expected<KernelRecipe> KernelRecipe::fromJSON(const json::Value &V) {
  KernelRecipe R;
  const json::Value *Seed = V.find("seed");
  const json::Value *Shape = V.find("shape");
  if (!Seed || !Shape)
    return Error::failure("recipe JSON missing 'seed' or 'shape'");
  R.Seed = (uint64_t)Seed->asInt();
  R.SPMD = V.at("spmd").asBool();
  R.NumTeams = (int)V.at("num_teams").asInt();
  R.NumThreads = (int)V.at("num_threads").asInt();
  R.TripCount = (int)V.at("trip_count").asInt();
  const std::string &S = Shape->asString();
  if (S == "combined")
    R.RegionShape = Shape::Combined;
  else if (S == "distribute-inner")
    R.RegionShape = Shape::DistributeInner;
  else if (S == "flat")
    R.RegionShape = Shape::Flat;
  else
    return Error::failure("recipe JSON: unknown shape '" + S + "'");
  R.NumRegions = (int)V.at("num_regions").asInt();
  R.NumChunks = (int)V.at("num_chunks").asInt();
  R.EscapingTeamLocal = V.at("escaping_team_local").asBool();
  R.NonEscapingTeamLocal = V.at("non_escaping_team_local").asBool();
  R.WorkerLocal = V.at("worker_local").asBool();
  R.GuardedSideEffect = V.at("guarded_side_effect").asBool();
  R.NestedParallel = V.at("nested_parallel").asBool();
  R.IndirectParallelCall = V.at("indirect_parallel_call").asBool();
  R.ExprOps = (int)V.at("expr_ops").asInt();
  R.ExprSeed = (uint64_t)V.at("expr_seed").asInt();
  if (R.TripCount <= 0 || R.NumTeams <= 0 || R.NumThreads <= 0 ||
      R.NumRegions <= 0 || R.NumChunks <= 0 ||
      R.TripCount % R.NumChunks != 0)
    return Error::failure("recipe JSON: inconsistent sizes");
  return R;
}

std::string KernelRecipe::summary() const {
  std::ostringstream OS;
  OS << "seed=" << Seed << (SPMD ? " spmd" : " generic") << " teams="
     << NumTeams << "x" << NumThreads << " trip=" << TripCount << " shape="
     << shapeName(RegionShape) << "/" << NumRegions;
  std::string Tags;
  auto Tag = [&](bool On, const char *Name) {
    if (!On)
      return;
    Tags += Tags.empty() ? "" : ",";
    Tags += Name;
  };
  Tag(EscapingTeamLocal, "esc");
  Tag(NonEscapingTeamLocal, "priv");
  Tag(WorkerLocal, "wl");
  Tag(GuardedSideEffect, "guard");
  Tag(NestedParallel, "nested");
  Tag(IndirectParallelCall, "indirect");
  if (!Tags.empty())
    OS << " [" << Tags << "]";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Expression sampling (shared by IR emission and the host model)
//===----------------------------------------------------------------------===//

namespace {
/// One arithmetic step: Acc = Acc <op> <operand>.
struct ExprOp {
  unsigned Kind;    ///< 0 fadd, 1 fsub, 2 fmul
  unsigned Operand; ///< 0 constant, 1 x (= in[i]), 2 (double)n
  double Const;
};
} // namespace

static std::vector<ExprOp> sampleExprOps(uint64_t Seed, int Count) {
  FuzzRNG Rng(Seed ^ 0x5deece66dULL);
  std::vector<ExprOp> Ops(Count);
  for (ExprOp &Op : Ops) {
    Op.Kind = (unsigned)Rng.next(3);
    Op.Operand = (unsigned)Rng.next(3);
    // Small quarter-integer constants keep magnitudes bounded through
    // multiply chains; exactness is irrelevant (host and device perform
    // the identical IEEE op sequence) but small values read well in IR.
    Op.Const = (double)Rng.nextInt(-8, 8) * 0.25;
  }
  return Ops;
}

std::vector<double> ompgpu::makeInputs(const KernelRecipe &R) {
  FuzzRNG Rng(R.ExprSeed ^ 0x9e3779b9ULL);
  std::vector<double> In((size_t)R.TripCount);
  for (double &V : In)
    V = (double)Rng.nextInt(-16, 16) * 0.25;
  return In;
}

std::vector<double> ompgpu::expectedOutputs(const KernelRecipe &R,
                                            const std::vector<double> &In) {
  // This mirrors the emitted IR op-for-op; any edit here must be matched
  // in generateKernel's body emission (and vice versa).
  double N = (double)R.TripCount;
  double TeamEscape = N * 0.25;
  double TeamPriv = N * 0.5;
  std::vector<double> Out((size_t)R.TripCount, 0.0);
  for (int K = 0; K < R.NumRegions; ++K) {
    std::vector<ExprOp> Ops = sampleExprOps(R.ExprSeed + (uint64_t)K,
                                            R.ExprOps);
    for (int I = 0; I < R.TripCount; ++I) {
      double X = In[(size_t)I];
      double Acc = X;
      for (const ExprOp &Op : Ops) {
        double Operand = Op.Operand == 0 ? Op.Const
                         : Op.Operand == 1 ? X
                                           : N;
        Acc = Op.Kind == 0   ? Acc + Operand
              : Op.Kind == 1 ? Acc - Operand
                             : Acc * Operand;
      }
      if (R.EscapingTeamLocal)
        Acc = Acc + TeamEscape;
      if (R.NonEscapingTeamLocal)
        Acc = Acc + TeamPriv;
      if (R.WorkerLocal)
        Acc = Acc + 1.5;
      if (K > 0)
        Acc = Out[(size_t)I] * 0.5 + Acc;
      if (R.GuardedSideEffect)
        Acc = X > 0.0 ? Acc + 1.0 : Acc - 1.0;
      Out[(size_t)I] = Acc;
      if (R.NestedParallel && K == 0)
        Out[(size_t)I] = Out[(size_t)I] * 2.0 + X;
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// IR emission
//===----------------------------------------------------------------------===//

/// Builds the hand-rolled wrapper of the nested parallel region:
///   void fuzz_nested_wrapper(ptr frame)  // frame = {ptr out, i32 i, f64 x}
///     out[i] = out[i] * 2.0 + x
static Function *buildNestedWrapper(OMPCodeGen &CG, StructType *FrameTy) {
  IRContext &Ctx = CG.getContext();
  Module &M = CG.getModule();
  Type *F64 = Ctx.getDoubleTy();
  Function *W = M.createFunction(
      "fuzz_nested_wrapper",
      Ctx.getFunctionTy(Ctx.getVoidTy(), {Ctx.getPtrTy()}),
      Linkage::Internal);
  Argument *Frame = W->getArg(0);
  Frame->setName("captured_args");

  IRBuilder B(Ctx);
  B.setInsertPoint(W->createBlock("entry"));
  Value *OutP = B.createLoad(
      Ctx.getPtrTy(),
      B.createGEP(FrameTy, Frame, {Ctx.getInt64(0), Ctx.getInt64(0)}),
      "nested.out");
  Value *I = B.createLoad(
      Ctx.getInt32Ty(),
      B.createGEP(FrameTy, Frame, {Ctx.getInt64(0), Ctx.getInt64(1)}),
      "nested.i");
  Value *X = B.createLoad(
      F64, B.createGEP(FrameTy, Frame, {Ctx.getInt64(0), Ctx.getInt64(2)}),
      "nested.x");
  Value *EP = B.createGEP(F64, OutP, {I}, "nested.elem");
  Value *Cur = B.createLoad(F64, EP, "nested.cur");
  B.createStore(B.createFAdd(B.createFMul(Cur, Ctx.getDouble(2.0)), X), EP);
  B.createRetVoid();
  return W;
}

/// Rewrites every kernel-scope __kmpc_parallel_51 call site so its callee
/// is a select between two wrapper functions instead of a direct function
/// reference. The condition (n < 2^20) is always true at runtime — the
/// original wrapper always runs, so semantics are untouched — but the
/// region becomes statically unknown, exercising the optimizer's
/// unknown-parallel-region paths (OMP132, state-machine fallbacks).
static void makeParallelCallsIndirect(OMPCodeGen &CG, Function *Kernel,
                                      Argument *N) {
  IRContext &Ctx = CG.getContext();
  Function *P51 = CG.getRTFn(RTFn::Parallel51);

  std::vector<CallInst *> Sites;
  std::vector<Function *> Wrappers;
  for (BasicBlock *BB : Kernel->getBlocks())
    for (Instruction *I : BB->getInstructions())
      if (auto *C = dyn_cast<CallInst>(I))
        if (C->getCalledFunction() == P51)
          if (auto *W = dyn_cast<Function>(C->getArgOperand(0))) {
            Sites.push_back(C);
            Wrappers.push_back(W);
          }

  for (size_t I = 0, E = Sites.size(); I != E; ++I) {
    CallInst *C = Sites[I];
    Function *Orig = Wrappers[I];
    Function *Other = Wrappers[(I + 1) % Wrappers.size()];
    BasicBlock *BB = C->getParent();
    Instruction *Cond =
        new ICmpInst(Ctx, ICmpPred::SLT, N, Ctx.getInt32(1 << 20));
    Cond->setName("indirect.cond");
    BB->insertBefore(Cond, C);
    Instruction *Callee = new SelectInst(Cond, Orig, Other);
    Callee->setName("indirect.fn");
    BB->insertBefore(Callee, C);
    C->setArgOperand(0, Callee);
  }
}

Function *ompgpu::generateKernel(OMPCodeGen &CG, const KernelRecipe &R) {
  IRContext &Ctx = CG.getContext();
  Type *F64 = Ctx.getDoubleTy();
  Type *I32 = Ctx.getInt32Ty();
  Type *Ptr = Ctx.getPtrTy();

  TargetRegionBuilder TRB(CG, "fuzz_kernel", {Ptr, Ptr, I32},
                          R.SPMD ? ExecMode::SPMD : ExecMode::Generic,
                          R.NumTeams, R.NumThreads);
  TRB.getKernel()->getKernelEnvironment().MayUseNestedParallelism =
      R.NestedParallel;
  Argument *In = TRB.getParam(0);
  Argument *Out = TRB.getParam(1);
  Argument *N = TRB.getParam(2);
  In->setName("in");
  Out->setName("out");
  N->setName("n");
  IRBuilder &B = TRB.getBuilder();

  // Team-scope locals (main-thread allocations in generic mode).
  Value *TeamEscapePtr = nullptr; // captured by reference below
  Value *TeamPrivVal = nullptr;   // captured by value below
  if (R.EscapingTeamLocal) {
    TeamEscapePtr =
        TRB.emitLocalVariable(F64, "team_escape", /*AddressTaken=*/true);
    Value *NF = B.createCast(CastOp::SIToFP, N, F64, "n.fp");
    B.createStore(B.createFMul(NF, Ctx.getDouble(0.25)), TeamEscapePtr);
  }
  if (R.NonEscapingTeamLocal) {
    Value *L =
        TRB.emitLocalVariable(F64, "team_priv", /*AddressTaken=*/false);
    Value *NF = B.createCast(CastOp::SIToFP, N, F64, "n.fp");
    B.createStore(B.createFMul(NF, Ctx.getDouble(0.5)), L);
    TeamPrivVal = B.createLoad(F64, L, "team_priv.val");
  }

  // The nested parallel region's wrapper and frame type, shared by every
  // call site (one per element of region 0).
  StructType *NestedFrameTy = nullptr;
  Function *NestedWrapper = nullptr;
  if (R.NestedParallel) {
    NestedFrameTy = Ctx.getStructTy({Ptr, I32, F64});
    NestedWrapper = buildNestedWrapper(CG, NestedFrameTy);
  }

  // Captures shared by all regions.
  std::vector<TargetRegionBuilder::Capture> BaseCaps = {
      {In, false, "in"}, {Out, false, "out"}, {N, false, "n"}};
  if (TeamEscapePtr)
    BaseCaps.push_back({TeamEscapePtr, /*ByRef=*/true, "team_escape"});
  if (TeamPrivVal)
    BaseCaps.push_back({TeamPrivVal, false, "team_priv"});

  // Per-wrapper state the prologue allocates and the body consumes.
  Value *WorkerSlot = nullptr;
  Value *NestedFrame = nullptr;
  TargetRegionBuilder::PrologueFn Prologue =
      [&](IRBuilder &PB, const TargetRegionBuilder::CaptureMap &) {
        WorkerSlot = nullptr;
        NestedFrame = nullptr;
        if (R.WorkerLocal)
          WorkerSlot = TRB.emitParallelLocalVariable(
              PB, F64, "worker_local", /*AddressTaken=*/true);
        if (R.NestedParallel)
          // Hoisted out of the element loop: one frame per wrapper
          // invocation, refilled per element. A thread only ever passes it
          // to the (serialized) nested region it calls itself.
          NestedFrame = PB.createAlloca(NestedFrameTy, "nested_frame");
      };

  // Emits out[ElemIdx] = f_K(in[ElemIdx], n) into a wrapper body. The op
  // order mirrors expectedOutputs exactly.
  auto emitElement = [&](IRBuilder &LB, Value *ElemIdx, int K,
                         const TargetRegionBuilder::CaptureMap &Map) {
    Value *InW = Map.at(In);
    Value *OutW = Map.at(Out);
    Value *NW = Map.at(N);
    Value *X =
        LB.createLoad(F64, LB.createGEP(F64, InW, {ElemIdx}, "in.addr"),
                      "x");
    Value *NF = LB.createCast(CastOp::SIToFP, NW, F64, "n.fp");

    Value *Acc = X;
    for (const ExprOp &Op :
         sampleExprOps(R.ExprSeed + (uint64_t)K, R.ExprOps)) {
      Value *Operand = Op.Operand == 0 ? (Value *)Ctx.getDouble(Op.Const)
                       : Op.Operand == 1 ? X
                                         : NF;
      Acc = Op.Kind == 0   ? LB.createFAdd(Acc, Operand)
            : Op.Kind == 1 ? LB.createFSub(Acc, Operand)
                           : LB.createFMul(Acc, Operand);
    }
    if (TeamEscapePtr)
      Acc = LB.createFAdd(
          Acc, LB.createLoad(F64, Map.at(TeamEscapePtr), "team_escape.val"));
    if (TeamPrivVal)
      Acc = LB.createFAdd(Acc, Map.at(TeamPrivVal));
    if (R.WorkerLocal) {
      // Round-trip through the address-taken worker allocation, then a
      // constant contribution so removal is observable.
      LB.createStore(Acc, WorkerSlot);
      Acc = LB.createLoad(F64, WorkerSlot, "worker_local.val");
      Acc = LB.createFAdd(Acc, Ctx.getDouble(1.5));
    }
    if (K > 0) {
      // Sequential regions accumulate. Safe in every mode: each element is
      // owned by the same thread in every region (identical striding), so
      // the read of the previous region's value is same-thread program
      // order in SPMD and barrier-ordered in generic.
      Value *Prev = LB.createLoad(
          F64, LB.createGEP(F64, OutW, {ElemIdx}, "out.prev.addr"),
          "out.prev");
      Acc = LB.createFAdd(LB.createFMul(Prev, Ctx.getDouble(0.5)), Acc);
    }
    if (R.GuardedSideEffect) {
      Value *Cond =
          LB.createFCmp(FCmpPred::OGT, X, Ctx.getDouble(0.0), "x.positive");
      Value *AccIn = Acc;
      Acc = emitSelectViaCFG(
          LB, Cond, F64, "guarded",
          [&](IRBuilder &TB) {
            return (Value *)TB.createFAdd(AccIn, Ctx.getDouble(1.0));
          },
          [&](IRBuilder &EB) {
            return (Value *)EB.createFSub(AccIn, Ctx.getDouble(1.0));
          });
    }
    Value *OutP = LB.createGEP(F64, OutW, {ElemIdx}, "out.addr");
    LB.createStore(Acc, OutP);

    if (R.NestedParallel && K == 0) {
      // Hand-rolled nested parallel region, exactly as the front-end
      // lowers one: fill the frame, then branch on __kmpc_parallel_level.
      // Inside a wrapper the level is always > 0, so the sequential direct
      // call runs; the __kmpc_parallel_51 arm is statically present (the
      // optimizer must reason about it) but dynamically dead.
      LB.createStore(OutW,
                     LB.createGEP(NestedFrameTy, NestedFrame,
                                  {Ctx.getInt64(0), Ctx.getInt64(0)},
                                  "nested_frame.out"));
      LB.createStore(ElemIdx,
                     LB.createGEP(NestedFrameTy, NestedFrame,
                                  {Ctx.getInt64(0), Ctx.getInt64(1)},
                                  "nested_frame.i"));
      LB.createStore(X,
                     LB.createGEP(NestedFrameTy, NestedFrame,
                                  {Ctx.getInt64(0), Ctx.getInt64(2)},
                                  "nested_frame.x"));
      Value *PL =
          LB.createCall(CG.getRTFn(RTFn::ParallelLevel), {}, "pl");
      Value *IsNested =
          LB.createICmp(ICmpPred::SGT, PL, Ctx.getInt32(0), "in.parallel");
      emitIfThenElse(
          LB, IsNested, "fuzz_nested",
          [&](IRBuilder &TB) { TB.createCall(NestedWrapper, {NestedFrame}); },
          [&](IRBuilder &EB) {
            EB.createCall(CG.getRTFn(RTFn::Parallel51),
                          {NestedWrapper, NestedFrame, Ctx.getInt32(-1)});
          });
    }
  };

  Value *Trip = Ctx.getInt32(R.TripCount);
  switch (R.RegionShape) {
  case KernelRecipe::Shape::Combined:
    TRB.emitDistributeParallelFor(
        Trip, BaseCaps,
        [&](IRBuilder &LB, Value *Idx,
            const TargetRegionBuilder::CaptureMap &Map) {
          emitElement(LB, Idx, 0, Map);
        },
        /*NumThreadsClause=*/-1, Prologue);
    break;

  case KernelRecipe::Shape::DistributeInner: {
    int ChunkSize = R.TripCount / R.NumChunks;
    TRB.emitDistributeLoop(
        Ctx.getInt32(R.NumChunks), [&](IRBuilder &DB, Value *Chunk) {
          std::vector<TargetRegionBuilder::Capture> Caps = BaseCaps;
          Caps.push_back({Chunk, false, "chunk"});
          TRB.emitParallelFor(
              Ctx.getInt32(ChunkSize), Caps,
              [&](IRBuilder &LB, Value *J,
                  const TargetRegionBuilder::CaptureMap &Map) {
                Value *Base = LB.createMul(
                    Map.at(Chunk), Ctx.getInt32(ChunkSize), "chunk.base");
                Value *ElemIdx = LB.createAdd(Base, J, "elem");
                emitElement(LB, ElemIdx, 0, Map);
              },
              /*NumThreadsClause=*/-1, Prologue);
          (void)DB;
        });
    break;
  }

  case KernelRecipe::Shape::Flat:
    for (int K = 0; K < R.NumRegions; ++K)
      TRB.emitParallelFor(
          Trip, BaseCaps,
          [&](IRBuilder &LB, Value *Idx,
              const TargetRegionBuilder::CaptureMap &Map) {
            emitElement(LB, Idx, K, Map);
          },
          /*NumThreadsClause=*/-1, Prologue);
    break;
  }

  Function *Kernel = TRB.finalize();
  if (R.IndirectParallelCall)
    makeParallelCallsIndirect(CG, Kernel, N);
  return Kernel;
}
