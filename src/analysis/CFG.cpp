//===- analysis/CFG.cpp - CFG traversal helpers ----------------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"
#include "ir/Function.h"

#include <algorithm>
#include <set>

using namespace ompgpu;

static void postOrderVisit(BasicBlock *BB, std::set<BasicBlock *> &Visited,
                           std::vector<BasicBlock *> &Order) {
  if (!Visited.insert(BB).second)
    return;
  for (BasicBlock *Succ : BB->successors())
    postOrderVisit(Succ, Visited, Order);
  Order.push_back(BB);
}

std::vector<BasicBlock *> ompgpu::postOrder(const Function &F) {
  std::vector<BasicBlock *> Order;
  if (F.isDeclaration())
    return Order;
  std::set<BasicBlock *> Visited;
  postOrderVisit(F.getEntryBlock(), Visited, Order);
  return Order;
}

std::vector<BasicBlock *> ompgpu::reversePostOrder(const Function &F) {
  std::vector<BasicBlock *> Order = postOrder(F);
  std::reverse(Order.begin(), Order.end());
  return Order;
}

bool ompgpu::isReachableFrom(const BasicBlock *From, const BasicBlock *To) {
  std::set<const BasicBlock *> Visited;
  std::vector<const BasicBlock *> Worklist = {From};
  while (!Worklist.empty()) {
    const BasicBlock *BB = Worklist.back();
    Worklist.pop_back();
    if (BB == To)
      return true;
    if (!Visited.insert(BB).second)
      continue;
    for (const BasicBlock *Succ :
         const_cast<BasicBlock *>(BB)->successors())
      Worklist.push_back(Succ);
  }
  return false;
}
