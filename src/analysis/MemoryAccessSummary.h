//===- analysis/MemoryAccessSummary.h - Per-pointer access class -*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inter-procedural memory-access summaries for kernel-captured pointers,
/// after Marzen et al., "Static Generation of Efficient OpenMP Offload Data
/// Mappings": classify every pointer argument as read-only, write-first,
/// read-write, or dead so the MapInference stage can shrink the implicit
/// `tofrom` mapping to the minimal transfer set (docs/data-mapping.md).
///
/// The walk is SCC-aware and bottom-up over the CallGraph: summaries of a
/// callee's formal arguments are merged into the caller at each call site,
/// and mutually-recursive cycles are iterated to a fixpoint (the summary
/// lattice is four monotone bits, so the iteration converges). The
/// captured-frame protocol of TargetRegionBuilder — store the pointer into
/// a frame struct, hand the frame to __kmpc_parallel_51 with an outlined
/// wrapper — is recognized explicitly, so summaries see *through* the
/// outlining that codegen performs. Anything unrecognized (ptrtoint,
/// indirect calls with the pointer, escaping stores) degrades to Unknown,
/// which downstream consumers treat as "keep the conservative tofrom".
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_ANALYSIS_MEMORYACCESSSUMMARY_H
#define OMPGPU_ANALYSIS_MEMORYACCESSSUMMARY_H

#include <map>
#include <memory>
#include <tuple>
#include <vector>

namespace ompgpu {

class DominatorTree;
class Function;
class Module;

/// The classification MapInference consumes, derived from the may-bits of a
/// PointerAccessSummary.
enum class PointerAccessClass : uint8_t {
  Dead,       ///< Never loaded or stored through — device scratch at most.
  ReadOnly,   ///< Loaded but never stored through.
  WriteFirst, ///< Stored through; every load is covered by an earlier store.
  ReadWrite,  ///< May read pre-existing data and write new data.
  Unknown,    ///< Escapes analysis; assume ReadWrite.
};

/// Stable lower-case spelling used in remarks and the compile report.
const char *pointerAccessClassName(PointerAccessClass C);

/// May-facts about all accesses through one pointer (and every pointer
/// derived from it) across the whole call tree below its function.
struct PointerAccessSummary {
  bool MayRead = false;
  bool MayWrite = false;
  /// A load may observe memory not previously stored through this pointer
  /// (i.e. not dominated by a store through the same derived address).
  bool MayReadBeforeWrite = false;
  /// The pointer escaped the analysis (ptrtoint, indirect call, unmatched
  /// store, ...). All other bits are meaningless when set.
  bool Unknown = false;

  PointerAccessClass classify() const;

  bool operator==(const PointerAccessSummary &O) const {
    return MayRead == O.MayRead && MayWrite == O.MayWrite &&
           MayReadBeforeWrite == O.MayReadBeforeWrite && Unknown == O.Unknown;
  }
  bool operator!=(const PointerAccessSummary &O) const {
    return !(*this == O);
  }
};

/// Whole-module access summaries for every pointer-typed argument of every
/// defined (non-runtime) function. Construction runs the bottom-up fixpoint;
/// queries are lookups.
class MemoryAccessSummaryAnalysis {
public:
  explicit MemoryAccessSummaryAnalysis(const Module &M);
  ~MemoryAccessSummaryAnalysis();

  /// Summary of formal argument \p ArgIdx of \p F. Non-pointer arguments
  /// and unanalyzed functions report Unknown.
  PointerAccessSummary argSummary(const Function *F, unsigned ArgIdx) const;

private:
  /// A summarized entity: a formal argument (FrameField == -1), or the
  /// pointer loaded from constant field FrameField of the frame struct
  /// passed as formal argument ArgNo (the outlined-wrapper protocol).
  using Key = std::tuple<const Function *, unsigned, int>;

  std::map<Key, PointerAccessSummary> Memo;
  std::vector<Key> Order;
  std::map<const Function *, std::unique_ptr<DominatorTree>> DomTrees;

  const DominatorTree &domTree(const Function *F);
  PointerAccessSummary demand(const Key &K);
  PointerAccessSummary compute(const Key &K);
};

} // namespace ompgpu

#endif // OMPGPU_ANALYSIS_MEMORYACCESSSUMMARY_H
