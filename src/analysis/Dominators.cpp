//===- analysis/Dominators.cpp - (Post)dominator trees ---------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "ir/Function.h"

#include <set>

using namespace ompgpu;

namespace {

/// Direction-abstracted CFG so one implementation serves both trees.
struct Graph {
  bool Reversed;

  std::vector<BasicBlock *> succs(const BasicBlock *BB) const {
    auto *B = const_cast<BasicBlock *>(BB);
    return Reversed ? B->predecessors() : B->successors();
  }
  std::vector<BasicBlock *> preds(const BasicBlock *BB) const {
    auto *B = const_cast<BasicBlock *>(BB);
    return Reversed ? B->successors() : B->predecessors();
  }
};

void postOrderFrom(BasicBlock *BB, const Graph &G,
                   std::set<const BasicBlock *> &Visited,
                   std::vector<const BasicBlock *> &Order) {
  if (!Visited.insert(BB).second)
    return;
  for (BasicBlock *S : G.succs(BB))
    postOrderFrom(S, G, Visited, Order);
  Order.push_back(BB);
}

} // namespace

// Implementation notes: blocks are mapped to dense indices in reverse
// post-order starting at 1; index 0 is a virtual super-root that joins
// multiple roots (the post-dominator tree of a function with several exits,
// or with none reachable). The Cooper-Harvey-Kennedy "intersect" walk then
// needs no special cases.
DominatorTree::DominatorTree(const Function &F, bool PostDominators)
    : Post(PostDominators) {
  if (F.isDeclaration())
    return;

  Graph G{PostDominators};

  std::vector<BasicBlock *> Roots;
  if (!PostDominators) {
    Roots.push_back(F.getEntryBlock());
  } else {
    for (BasicBlock *BB : F)
      if (BB->successors().empty())
        Roots.push_back(BB);
  }

  std::set<const BasicBlock *> Visited;
  std::vector<const BasicBlock *> PO;
  for (BasicBlock *R : Roots)
    postOrderFrom(R, G, Visited, PO);

  // Dense numbering: virtual root is 0, then RPO order.
  std::vector<const BasicBlock *> ByIndex;
  ByIndex.push_back(nullptr); // virtual root
  for (auto It = PO.rbegin(); It != PO.rend(); ++It) {
    Order[*It] = ByIndex.size();
    ByIndex.push_back(*It);
  }

  // UNDEF marks nodes whose dominator has not been computed yet; CHK must
  // ignore such predecessors rather than treating them as the root.
  const unsigned Undef = ~0u;
  std::vector<unsigned> Idom(ByIndex.size(), Undef);
  Idom[0] = 0;
  std::set<unsigned> RootIdx;
  for (const BasicBlock *R : Roots)
    if (Order.count(R))
      RootIdx.insert(Order.at(R));

  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (A > B)
        A = Idom[A];
      while (B > A)
        B = Idom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned Idx = 1, E = ByIndex.size(); Idx != E; ++Idx) {
      unsigned NewIdom;
      bool HaveIdom = false;
      if (RootIdx.count(Idx)) {
        NewIdom = 0;
        HaveIdom = true;
      } else {
        NewIdom = 0;
        for (const BasicBlock *P : G.preds(ByIndex[Idx])) {
          auto It = Order.find(P);
          if (It == Order.end())
            continue; // unreachable predecessor
          unsigned PIdx = It->second;
          if (Idom[PIdx] == Undef)
            continue; // not processed yet
          NewIdom = HaveIdom ? Intersect(NewIdom, PIdx) : PIdx;
          HaveIdom = true;
        }
      }
      if (HaveIdom && Idom[Idx] != NewIdom) {
        Idom[Idx] = NewIdom;
        Changed = true;
      }
    }
  }

  // Publish pointer-based idoms: null for roots/virtual root.
  for (unsigned Idx = 1, E = ByIndex.size(); Idx != E; ++Idx)
    IDom[ByIndex[Idx]] = (Idom[Idx] == 0 || Idom[Idx] == Undef)
                             ? nullptr
                             : ByIndex[Idom[Idx]];
}

const BasicBlock *DominatorTree::getIDom(const BasicBlock *BB) const {
  auto It = IDom.find(BB);
  return It == IDom.end() ? nullptr : It->second;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  if (A == B)
    return true;
  // Blocks outside the tree (unreachable in the traversal direction) are
  // dominated by everything.
  if (!Order.count(B))
    return true;
  if (!Order.count(A))
    return false;
  const BasicBlock *Cur = B;
  while (true) {
    auto It = IDom.find(Cur);
    if (It == IDom.end() || !It->second)
      return false;
    Cur = It->second;
    if (Cur == A)
      return true;
  }
}

bool DominatorTree::dominates(const Instruction *A,
                              const Instruction *B) const {
  const BasicBlock *ABB = A->getParent();
  const BasicBlock *BBB = B->getParent();
  if (ABB == BBB) {
    size_t AIdx = ABB->indexOf(A);
    size_t BIdx = ABB->indexOf(B);
    return Post ? AIdx > BIdx : AIdx < BIdx;
  }
  return dominates(ABB, BBB);
}
