//===- analysis/OMPLint.cpp - Device-IR race & barrier lint ----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "analysis/OMPLint.h"

#include "analysis/BarrierSync.h"
#include "analysis/CFG.h"
#include "analysis/Dominators.h"
#include "analysis/MapInference.h"
#include "analysis/MemoryAccessSummary.h"
#include "analysis/PointerEscape.h"
#include "analysis/ThreadValueAnalysis.h"
#include "ir/BasicBlock.h"
#include "ir/Constant.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "ir/Type.h"

#include <cstdlib>
#include <map>
#include <memory>
#include <queue>

using namespace ompgpu;

unsigned ompgpu::lintRemarkNumber(LintKind K) {
  switch (K) {
  case LintKind::BarrierDivergence:
    return 200;
  case LintKind::SharedRace:
    return 201;
  case LintKind::AllocFreePairing:
    return 202;
  case LintKind::UseAfterFree:
    return 203;
  case LintKind::GuardProtocol:
    return 204;
  case LintKind::StaleHostRead:
    return 242;
  case LintKind::StaleDeviceRead:
    return 243;
  case LintKind::RedundantRoundTrip:
    return 244;
  }
  return 0;
}

const char *ompgpu::lintKindName(LintKind K) {
  switch (K) {
  case LintKind::BarrierDivergence:
    return "barrier-divergence";
  case LintKind::SharedRace:
    return "shared-race";
  case LintKind::AllocFreePairing:
    return "alloc-free-pairing";
  case LintKind::UseAfterFree:
    return "use-after-free";
  case LintKind::GuardProtocol:
    return "guard-protocol";
  case LintKind::StaleHostRead:
    return "stale-host-read";
  case LintKind::StaleDeviceRead:
    return "stale-device-read";
  case LintKind::RedundantRoundTrip:
    return "redundant-round-trip";
  }
  return "unknown";
}

std::string LintFinding::str() const {
  return "OMP" + std::to_string(lintRemarkNumber(Kind)) + " in '" +
         FunctionName + "': " + Message;
}

std::string LintResult::summary() const {
  std::string S;
  for (const LintFinding &F : Findings) {
    if (!S.empty())
      S += "; ";
    S += F.str();
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

namespace {

/// Callee-inspection bound, aligned with EscapeConfig::MaxDepth.
constexpr unsigned MaxWalkDepth = 8;

bool isRuntimeName(const std::string &N) {
  return N.rfind("__kmpc_", 0) == 0 || N.rfind("omp_", 0) == 0 ||
         N.rfind("llvm.", 0) == 0;
}

const Function *directCallee(const Instruction *I) {
  const auto *CI = dyn_cast<CallInst>(I);
  return CI ? CI->getCalledFunction() : nullptr;
}

bool isCallTo(const Instruction *I, const char *Name) {
  const Function *Callee = directCallee(I);
  return Callee && Callee->getName() == Name;
}

bool isAllocCall(const Instruction *I) {
  return isCallTo(I, "__kmpc_alloc_shared") ||
         isCallTo(I, "__kmpc_data_sharing_coalesced_push_stack");
}

bool isFreeCall(const Instruction *I) {
  return isCallTo(I, "__kmpc_free_shared") ||
         isCallTo(I, "__kmpc_data_sharing_pop_stack");
}

std::string blockLabel(const BasicBlock *BB) {
  return BB->getName().empty() ? "<block>" : BB->getName();
}

std::string describe(const Instruction *I) {
  std::string S = I->getOpcodeName();
  if (const Function *Callee = directCallee(I))
    S += " '" + Callee->getName() + "'";
  else if (!I->getName().empty())
    S += " '" + I->getName() + "'";
  return S + " in block '" + blockLabel(I->getParent()) + "'";
}

/// Strips GEPs and casts to the underlying pointer root.
const Value *pointerRoot(const Value *Ptr) {
  while (true) {
    if (const auto *GEP = dyn_cast<GEPInst>(Ptr)) {
      Ptr = GEP->getPointerOperand();
      continue;
    }
    if (const auto *C = dyn_cast<CastInst>(Ptr)) {
      Ptr = C->getSrc();
      continue;
    }
    return Ptr;
  }
}

/// Whether \p F's incoming arguments are assumed uniform (kernels get
/// uniform launch parameters, wrappers get the shared captured frame,
/// runtime entry points get runtime-managed state). For any other
/// function the shape of an argument depends on the call site, so local
/// verdicts about argument-rooted pointers are unreliable.
bool argumentShapesUniform(const Function &F) {
  const std::string &N = F.getName();
  return F.isKernel() || N.find("_wrapper") != std::string::npos ||
         N.rfind("__kmpc", 0) == 0;
}

/// The thread-value configuration the lint analyzes device IR under. It
/// mirrors the GPU simulator's (gpusim/Device.cpp) so the lint's
/// uniformity verdicts agree with the machine model the differential
/// oracle executes on.
ThreadValueConfig lintThreadConfig(const Function &F) {
  ThreadValueConfig C;
  C.ThreadIdFunctions = {"__kmpc_get_hardware_thread_id_in_block"};
  C.UniformFunctions = {"__kmpc_get_hardware_num_threads_in_block",
                        "__kmpc_get_warp_size",
                        "omp_get_team_num",
                        "omp_get_num_teams",
                        "omp_get_num_threads",
                        "__kmpc_is_spmd_exec_mode",
                        "__kmpc_parallel_level",
                        "__kmpc_is_generic_main_thread"};
  C.CallShapes["__kmpc_data_sharing_coalesced_push_stack"] =
      ThreadShape::linear(8);
  // A team-shared allocation's address is the same for every thread that
  // can see it (per-thread allocations never become shared objects, see
  // collectSharedObjects).
  C.CallShapes["__kmpc_alloc_shared"] = ThreadShape::uniform();
  if (argumentShapesUniform(F))
    C.ArgumentShape = ThreadShape::uniform();
  return C;
}

//===----------------------------------------------------------------------===//
// Per-function structure recognition
//===----------------------------------------------------------------------===//

/// One recognized `hw_tid == 0` main-thread guard (SPMDzation's Fig. 7).
struct GuardShape {
  const BrInst *Br = nullptr;
  const BasicBlock *PreBB = nullptr;   ///< Block ending in the guard branch.
  const BasicBlock *GuardBB = nullptr; ///< Main-thread-only successor.
  const BasicBlock *JoinBB = nullptr;  ///< Rejoin successor.
  bool WellFormed = false;
  std::string Problem; ///< Why the guard is malformed (when it is).
};

/// Everything the checkers need about one defined, non-runtime function.
struct FunctionLint {
  Function *F;
  ThreadValueAnalysis TVA;
  DominatorTree DT;
  PostDominatorTree PDT;

  /// The kernel-entry dispatch on `__kmpc_target_init(...) == -1`.
  const BrInst *InitBr = nullptr;
  /// Successor taken by the main thread (all threads in SPMD mode).
  const BasicBlock *UserBB = nullptr;
  /// Blocks only worker threads execute (the front-end state machine of
  /// generic kernels); exempt from the divergence check — the runtime
  /// protocol pairs their barriers with the main thread's fork/join.
  std::set<const BasicBlock *> WorkerOnly;
  bool IsKernel = false;
  bool IsSPMDKernel = false;

  std::vector<GuardShape> Guards;
  /// Blocks dominated by a well-formed guard's main-thread successor.
  std::set<const BasicBlock *> GuardedBlocks;

  std::map<const BasicBlock *, std::set<const BasicBlock *>> ReachCache;

  FunctionLint(Function *F)
      : F(F), TVA(*F, lintThreadConfig(*F)), DT(*F), PDT(*F) {}

  const std::set<const BasicBlock *> &reachableFrom(const BasicBlock *BB) {
    auto It = ReachCache.find(BB);
    if (It != ReachCache.end())
      return It->second;
    std::set<const BasicBlock *> &R = ReachCache[BB];
    std::vector<const BasicBlock *> Work{BB};
    while (!Work.empty()) {
      const BasicBlock *Cur = Work.back();
      Work.pop_back();
      if (!R.insert(Cur).second)
        continue;
      for (const BasicBlock *S : Cur->successors())
        Work.push_back(S);
    }
    return R;
  }

  /// True if only the team's main thread executes \p BB: the block is
  /// dominated by the generic-mode user-code entry or by a guard's
  /// main-thread successor.
  bool isMainOnly(const BasicBlock *BB) {
    if (IsKernel && !IsSPMDKernel && UserBB && DT.dominates(UserBB, BB) &&
        !WorkerOnly.count(BB))
      return true;
    for (const GuardShape &G : Guards)
      if (DT.dominates(G.GuardBB, BB) && BB != G.JoinBB)
        return true;
    return false;
  }
};

/// Recognizes the kernel-entry dispatch and the worker-only region.
void recognizeKernelShape(FunctionLint &FL) {
  Function *F = FL.F;
  FL.IsKernel = F->isKernel();
  if (!FL.IsKernel)
    return;
  FL.IsSPMDKernel = F->getKernelEnvironment().Mode == ExecMode::SPMD;
  for (BasicBlock *BB : *F) {
    const auto *Br = dyn_cast_or_null<BrInst>(BB->getTerminator());
    if (!Br || !Br->isConditional())
      continue;
    StablePredicate P = classifyStablePredicate(Br->getCondition());
    if (P.K != StablePredicate::IsMainInit)
      continue;
    FL.InitBr = Br;
    FL.UserBB = Br->getSuccessor(P.Negated ? 1 : 0);
    const BasicBlock *WorkerBB = Br->getSuccessor(P.Negated ? 0 : 1);
    if (!FL.IsSPMDKernel) {
      const std::set<const BasicBlock *> &FromWorker =
          FL.reachableFrom(WorkerBB);
      const std::set<const BasicBlock *> &FromUser =
          FL.reachableFrom(FL.UserBB);
      for (const BasicBlock *WB : FromWorker)
        if (!FromUser.count(WB))
          FL.WorkerOnly.insert(WB);
    }
    break;
  }
}

/// Recognizes and validates the `hw_tid == 0` guards against the Fig. 7
/// protocol: a barrier immediately before the branch, a guarded block that
/// falls through to the join, a join that starts with a barrier and
/// post-dominates the guard, and no synchronization inside the guarded
/// region.
void recognizeGuards(FunctionLint &FL, const BarrierInfo &BI) {
  for (BasicBlock *BB : *FL.F) {
    const auto *Br = dyn_cast_or_null<BrInst>(BB->getTerminator());
    if (!Br || !Br->isConditional())
      continue;
    StablePredicate P = classifyStablePredicate(Br->getCondition());
    if (P.K != StablePredicate::IsMainTid0)
      continue;
    GuardShape G;
    G.Br = Br;
    G.PreBB = BB;
    G.GuardBB = Br->getSuccessor(P.Negated ? 1 : 0);
    G.JoinBB = Br->getSuccessor(P.Negated ? 0 : 1);

    // A barrier must precede the branch with no side effect in between
    // (the "pre" barrier of Fig. 7 that lets the main thread overwrite
    // state other threads may still be reading).
    bool SawPreBarrier = false;
    std::vector<Instruction *> Insts = BB->getInstructions();
    for (auto It = Insts.rbegin(); It != Insts.rend(); ++It) {
      Instruction *I = *It;
      if (I == Br->getCondition() || I->isTerminator())
        continue;
      if (BarrierInfo::isBarrierCall(I)) {
        SawPreBarrier = true;
        break;
      }
      if (isCallTo(I, "__kmpc_get_hardware_thread_id_in_block"))
        continue;
      if (isa<StoreInst>(I) || isa<AtomicRMWInst>(I) || isa<CallInst>(I))
        break;
    }
    if (!SawPreBarrier)
      G.Problem = "no team barrier immediately before the guard branch";
    else if (const auto *GBr =
                 dyn_cast_or_null<BrInst>(G.GuardBB->getTerminator());
             !GBr || GBr->isConditional() ||
             GBr->getSuccessor(0) != G.JoinBB)
      G.Problem = "guarded region does not fall through to the join block";
    else {
      // The join must start with a barrier (phis excepted).
      bool JoinBarrier = false;
      for (Instruction *I : *G.JoinBB) {
        if (isa<PhiInst>(I))
          continue;
        JoinBarrier = BarrierInfo::isBarrierCall(I);
        break;
      }
      if (!JoinBarrier)
        G.Problem = "join block does not begin with a team barrier";
      else if (!FL.PDT.dominates(G.JoinBB, G.PreBB))
        G.Problem = "join block does not post-dominate the guard";
      else
        for (Instruction *I : *G.GuardBB)
          if (BI.maySynchronize(I)) {
            G.Problem = "synchronization inside the main-thread-only "
                        "guarded region";
            break;
          }
    }
    G.WellFormed = G.Problem.empty();
    if (G.WellFormed)
      for (const BasicBlock *DomBB : *FL.F)
        if (FL.DT.dominates(G.GuardBB, DomBB) && DomBB != G.JoinBB)
          FL.GuardedBlocks.insert(DomBB);
    FL.Guards.push_back(G);
  }
}

//===----------------------------------------------------------------------===//
// The lint context
//===----------------------------------------------------------------------===//

struct LintContext {
  const Module &M;
  const LintOptions &Opts;
  BarrierInfo BI;
  std::vector<Function *> Checked; ///< Defined, non-runtime functions.
  std::map<const Function *, std::unique_ptr<FunctionLint>> FLs;
  std::vector<LintFinding> Findings;
  std::set<std::string> Reported; ///< Dedup key per finding.

  LintContext(const Module &M, const LintOptions &Opts)
      : M(M), Opts(Opts), BI(M) {
    for (Function *F : M.functions()) {
      if (F->isDeclaration() || isRuntimeName(F->getName()))
        continue;
      Checked.push_back(F);
      auto FL = std::make_unique<FunctionLint>(F);
      recognizeKernelShape(*FL);
      recognizeGuards(*FL, BI);
      FLs.emplace(F, std::move(FL));
    }
  }

  FunctionLint *lintOf(const Function *F) {
    auto It = FLs.find(F);
    return It == FLs.end() ? nullptr : It->second.get();
  }

  void report(LintKind Kind, const Function *F, const Instruction *I,
              std::string Object, std::string Message,
              std::vector<std::string> Witness = {}) {
    LintFinding Finding;
    Finding.Kind = Kind;
    Finding.FunctionName = F->getName();
    Finding.Instruction = I ? describe(I) : "";
    Finding.Object = std::move(Object);
    Finding.Message = std::move(Message);
    Finding.Witness = std::move(Witness);
    std::string Key = Finding.str() + "|" + Finding.Instruction;
    if (Reported.insert(Key).second)
      Findings.push_back(std::move(Finding));
  }
};

//===----------------------------------------------------------------------===//
// Pointer walking (objects, allocations)
//===----------------------------------------------------------------------===//

/// One SSA-visible access to a walked pointer.
struct PtrAccess {
  enum Kind : uint8_t { Load, Store, Atomic, Free } K;
  Instruction *I;
  Function *InF;
  /// True when every call site on the chain from the walk's root to this
  /// access sits in a main-thread-only block: the access inherits that
  /// context even if its own function looks multi-threaded.
  bool CtxMainOnly;
};

/// All SSA-visible facts about one pointer root.
struct PtrWalk {
  std::vector<PtrAccess> Accesses;
  std::vector<PtrAccess> Frees;
  bool Escaped = false;
};

/// Follows \p Root through GEPs, casts, selects, phis, and into direct
/// callees (depth-bounded), recording loads, stores, atomics, and
/// globalization frees. Storing the pointer itself, returning it, or
/// passing it to an unknown callee marks the walk escaped. \p MainOnlyCtx
/// carries the call-chain context: a call from a main-thread-only block
/// makes everything in the callee main-thread-only too.
void walkPointerUses(LintContext &Ctx, const Value *Root, bool MainOnlyCtx,
                     unsigned Depth, std::set<const Value *> &Visited,
                     PtrWalk &Out) {
  if (!Visited.insert(Root).second)
    return;
  for (const User *U : Root->users()) {
    auto *I = const_cast<Instruction *>(dyn_cast<Instruction>(U));
    if (!I)
      continue;
    Function *InF = I->getParent()->getParent();
    if (auto *GEP = dyn_cast<GEPInst>(I)) {
      if (GEP->getPointerOperand() == Root)
        walkPointerUses(Ctx, GEP, MainOnlyCtx, Depth, Visited, Out);
      continue;
    }
    if (isa<CastInst>(I) || isa<PhiInst>(I)) {
      walkPointerUses(Ctx, I, MainOnlyCtx, Depth, Visited, Out);
      continue;
    }
    if (auto *Sel = dyn_cast<SelectInst>(I)) {
      if (Sel->getTrueValue() == Root || Sel->getFalseValue() == Root)
        walkPointerUses(Ctx, Sel, MainOnlyCtx, Depth, Visited, Out);
      continue;
    }
    if (auto *LI = dyn_cast<LoadInst>(I)) {
      if (LI->getPointerOperand() == Root)
        Out.Accesses.push_back({PtrAccess::Load, I, InF, MainOnlyCtx});
      continue;
    }
    if (auto *SI = dyn_cast<StoreInst>(I)) {
      if (SI->getPointerOperand() == Root)
        Out.Accesses.push_back({PtrAccess::Store, I, InF, MainOnlyCtx});
      if (SI->getValueOperand() == Root)
        Out.Escaped = true; // The pointer itself is written to memory.
      continue;
    }
    if (auto *RMW = dyn_cast<AtomicRMWInst>(I)) {
      if (RMW->getPointerOperand() == Root)
        Out.Accesses.push_back({PtrAccess::Atomic, I, InF, MainOnlyCtx});
      continue;
    }
    if (isa<RetInst>(I)) {
      Out.Escaped = true;
      continue;
    }
    if (auto *CI = dyn_cast<CallInst>(I)) {
      Function *Callee = CI->getCalledFunction();
      if (!Callee) {
        Out.Escaped = true;
        continue;
      }
      if (isFreeCall(CI)) {
        if (CI->getArgOperand(0) == Root)
          Out.Frees.push_back({PtrAccess::Free, I, InF, MainOnlyCtx});
        continue;
      }
      if (Callee->isDeclaration() || isRuntimeName(Callee->getName())) {
        Out.Escaped = true;
        continue;
      }
      if (Depth >= MaxWalkDepth) {
        Out.Escaped = true;
        continue;
      }
      bool SiteMainOnly = MainOnlyCtx;
      if (FunctionLint *CallerFL = Ctx.lintOf(InF))
        SiteMainOnly |= CallerFL->isMainOnly(I->getParent());
      for (unsigned A = 0, E = CI->arg_size(); A != E; ++A)
        if (CI->getArgOperand(A) == Root && A < Callee->arg_size())
          walkPointerUses(Ctx, Callee->getArg(A), SiteMainOnly, Depth + 1,
                          Visited, Out);
      continue;
    }
    // Comparisons, arithmetic on the address, ... don't propagate access.
  }
}

PtrWalk walkPointer(LintContext &Ctx, const Value *Root) {
  PtrWalk Out;
  std::set<const Value *> Visited;
  walkPointerUses(Ctx, Root, /*MainOnlyCtx=*/false, 0, Visited, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Check (a): barrier divergence
//===----------------------------------------------------------------------===//

void checkBarrierDivergence(LintContext &Ctx, FunctionLint &FL) {
  Function *F = FL.F;

  // Did any guard of this function validate?
  std::map<const BrInst *, bool> GuardOK;
  for (const GuardShape &G : FL.Guards)
    GuardOK[G.Br] = G.WellFormed;

  for (BasicBlock *SiteBB : *F) {
    if (FL.WorkerOnly.count(SiteBB))
      continue;
    // The inliner names copied blocks '<callee>.<block>', so a block whose
    // label carries a runtime prefix is the body of a runtime function
    // (__kmpc_parallel_51, __kmpc_target_deinit, ...) spliced into user
    // code. Runtime bodies are exempt from the lint — they implement the
    // synchronization protocols, with their own level/active-worker checks
    // guarding each barrier — and inlining must not revoke that exemption.
    if (isRuntimeName(SiteBB->getName()))
      continue;
    for (Instruction *Site : *SiteBB) {
      bool IsSite = BarrierInfo::isBarrierCall(Site);
      if (!IsSite) {
        // A call into a user function that may barrier diverges just the
        // same when the call itself is under divergent control.
        const Function *Callee = directCallee(Site);
        IsSite = Callee && !Callee->isDeclaration() &&
                 !isRuntimeName(Callee->getName()) &&
                 Ctx.BI.mayBarrierFunctions().count(Callee);
      }
      if (!IsSite)
        continue;

      for (BasicBlock *BrBB : *F) {
        const auto *Br = dyn_cast_or_null<BrInst>(BrBB->getTerminator());
        if (!Br || !Br->isConditional() || FL.WorkerOnly.count(BrBB))
          continue;
        StablePredicate P = classifyStablePredicate(Br->getCondition());
        if (P.K == StablePredicate::IsMainInit)
          continue; // Runtime protocol: workers sync in the state machine.
        if (P.K == StablePredicate::IsMainTid0) {
          // Well-formed Fig. 7 guards are the sanctioned shape; malformed
          // ones in kernels are reported by the guard-protocol check.
          auto It = GuardOK.find(Br);
          if ((It != GuardOK.end() && It->second) || FL.IsKernel)
            continue;
        }
        if (!FL.TVA.getShape(Br->getCondition()).isDivergent())
          continue;
        if (FL.PDT.dominates(SiteBB, BrBB))
          continue; // Every thread still reaches the barrier.
        // The divergent region ends where the branch reconverges (its
        // immediate post-dominator). A barrier at or beyond that point is
        // executed by all threads; only a barrier strictly inside the
        // region — reachable on a feasible path that does not pass the
        // reconvergence point — diverges.
        const BasicBlock *Reconv = FL.PDT.getIDom(BrBB);
        if (Reconv == SiteBB)
          continue;
        SyncPathQuery Q;
        Q.From = Br;
        Q.To = Site;
        if (Reconv)
          Q.BlockedBlocks.insert(Reconv);
        std::vector<std::string> Witness;
        if (!existsSyncFreePath(Q, Ctx.BI, FL.DT, &Witness))
          continue;
        Ctx.report(LintKind::BarrierDivergence, F, Site, "",
                   "team barrier (" + describe(Site) +
                       ") sits inside the divergent region of the branch "
                       "in block '" +
                       blockLabel(BrBB) +
                       "'; threads may diverge at the barrier",
                   std::move(Witness));
        break; // One divergence witness per barrier site.
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Check (b): shared-memory races
//===----------------------------------------------------------------------===//

/// A shared object the race check tracks.
struct SharedObject {
  const Value *Root;
  std::string Name;
  Function *AllocInF = nullptr; ///< Null for globals.
};

std::vector<SharedObject> collectSharedObjects(LintContext &Ctx) {
  std::vector<SharedObject> Objects;
  for (GlobalVariable *G : Ctx.M.globals())
    if (G->getAddressSpace() == AddrSpace::Shared)
      Objects.push_back({G, G->getName(), nullptr});
  // Team-shared runtime allocations: only an allocation the main thread
  // performs is one object shared by the team. A multi-threaded context
  // calls the allocator once per thread — those are thread-private.
  for (Function *F : Ctx.Checked) {
    FunctionLint *FL = Ctx.lintOf(F);
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (isAllocCall(I) && FL->isMainOnly(BB))
          Objects.push_back(
              {I, I->getName().empty() ? "<alloc>" : I->getName(), F});
  }
  return Objects;
}

void checkSharedRaces(LintContext &Ctx) {
  for (const SharedObject &Obj : collectSharedObjects(Ctx)) {
    PtrWalk W = walkPointer(Ctx, Obj.Root);

    for (const PtrAccess &A : W.Accesses) {
      if (A.K != PtrAccess::Store)
        continue;
      FunctionLint *AFL = Ctx.lintOf(A.InF);
      if (!AFL || A.CtxMainOnly || AFL->isMainOnly(A.I->getParent()) ||
          AFL->WorkerOnly.count(A.I->getParent()))
        continue;
      auto *SI = cast<StoreInst>(A.I);
      // An argument-rooted pointer's shape is decided by the call sites;
      // judging it with this function's default argument shape would
      // mistake per-thread slices for overlapping writes.
      if (isa<Argument>(pointerRoot(SI->getPointerOperand())) &&
          !argumentShapesUniform(*A.InF))
        continue;
      ThreadShape PtrShape = AFL->TVA.getShape(SI->getPointerOperand());
      ThreadShape ValShape = AFL->TVA.getShape(SI->getValueOperand());
      int64_t Size = (int64_t)SI->getAccessType()->getSizeInBytes();
      if (PtrShape.isLinear() && PtrShape.Stride != 0 &&
          std::llabs(PtrShape.Stride) >= Size)
        continue; // Disjoint per-thread slots.
      if (PtrShape.isUniform() && ValShape.isUniform())
        continue; // Redundant identical writes.
      std::string Why =
          PtrShape.isUniform()
              ? "all threads write divergent values to the same location"
              : "threads write through overlapping divergent addresses";
      Ctx.report(LintKind::SharedRace, A.InF, A.I, Obj.Name,
                 "unsynchronized write to shared object '" + Obj.Name +
                     "' (" + describe(A.I) + "): " + Why);
    }

    // Main-thread writes must be separated from the team's reads by a
    // barrier (the broadcast protocol); a sync-free path is a race.
    for (const PtrAccess &WAcc : W.Accesses) {
      if (WAcc.K != PtrAccess::Store && WAcc.K != PtrAccess::Atomic)
        continue;
      FunctionLint *WFL = Ctx.lintOf(WAcc.InF);
      if (!WFL || !WFL->isMainOnly(WAcc.I->getParent()))
        continue;
      for (const PtrAccess &RAcc : W.Accesses) {
        if (RAcc.InF != WAcc.InF || RAcc.I == WAcc.I)
          continue;
        if (RAcc.CtxMainOnly || WFL->isMainOnly(RAcc.I->getParent()))
          continue;
        SyncPathQuery Q;
        Q.From = WAcc.I;
        Q.To = RAcc.I;
        Q.StopAtSync = true;
        std::vector<std::string> Witness;
        if (!existsSyncFreePath(Q, Ctx.BI, WFL->DT, &Witness))
          continue;
        Ctx.report(LintKind::SharedRace, WAcc.InF, RAcc.I, Obj.Name,
                   "main-thread write to shared object '" + Obj.Name +
                       "' (" + describe(WAcc.I) +
                       ") can be observed by other threads (" +
                       describe(RAcc.I) +
                       ") without an intervening team barrier",
                   std::move(Witness));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Check (c): globalization pairing
//===----------------------------------------------------------------------===//

/// Constant argument \p Idx of the call, or -1.
int64_t constArg(const Instruction *I, unsigned Idx) {
  const auto *CI = cast<CallInst>(I);
  if (Idx >= CI->arg_size())
    return -1;
  const auto *C = dyn_cast<ConstantInt>(CI->getArgOperand(Idx));
  return C ? C->getValue() : -1;
}

void checkAllocFreePairing(LintContext &Ctx) {
  EscapeConfig EC;
  EC.ClassifyCallArg = [](const CallInst &CI, unsigned) {
    const Function *Callee = CI.getCalledFunction();
    if (Callee && (Callee->getName() == "__kmpc_free_shared" ||
                   Callee->getName() == "__kmpc_data_sharing_pop_stack"))
      return ArgCaptureKind::NoCapture;
    if (Callee && !Callee->isDeclaration() &&
        !isRuntimeName(Callee->getName()))
      return ArgCaptureKind::InspectCallee;
    return ArgCaptureKind::Captures;
  };

  for (Function *F : Ctx.Checked) {
    FunctionLint *FL = Ctx.lintOf(F);
    for (BasicBlock *BB : *F) {
      for (Instruction *A : *BB) {
        if (!isAllocCall(A))
          continue;
        bool IsAllocShared = isCallTo(A, "__kmpc_alloc_shared");
        std::string Name = A->getName().empty() ? "<alloc>" : A->getName();
        PtrWalk W = walkPointer(Ctx, A);
        bool Escapes = analyzePointerEscape(A, EC).Escapes;

        for (const PtrAccess &Free : W.Frees) {
          bool FreeIsFreeShared = isCallTo(Free.I, "__kmpc_free_shared");
          if (FreeIsFreeShared != IsAllocShared)
            Ctx.report(
                LintKind::AllocFreePairing, Free.InF, Free.I, Name,
                "allocation '" + Name + "' from '" +
                    directCallee(A)->getName() + "' is released with '" +
                    directCallee(Free.I)->getName() +
                    "'; alloc/free APIs must pair");
          if (IsAllocShared && FreeIsFreeShared) {
            int64_t AllocSize = constArg(A, 0);
            int64_t FreeSize = constArg(Free.I, 1);
            if (AllocSize >= 0 && FreeSize >= 0 && AllocSize != FreeSize)
              Ctx.report(LintKind::AllocFreePairing, Free.InF, Free.I,
                         Name,
                         "'" + Name + "' allocates " +
                             std::to_string(AllocSize) +
                             " bytes but the matching free releases " +
                             std::to_string(FreeSize) + " bytes");
          }
        }

        // Use-after-free / double-free along a feasible path.
        for (const PtrAccess &Free : W.Frees) {
          if (Free.InF != F)
            continue; // Path reasoning is intra-function.
          for (const PtrAccess &Use : W.Accesses) {
            if (Use.InF != F)
              continue;
            SyncPathQuery Q;
            Q.From = Free.I;
            Q.To = Use.I;
            // A loop back-edge that re-executes the allocation starts a
            // new object; block there so only uses of the freed one count.
            Q.Blockers.insert(A);
            std::vector<std::string> Witness;
            if (!existsSyncFreePath(Q, Ctx.BI, FL->DT, &Witness))
              continue;
            Ctx.report(LintKind::UseAfterFree, F, Use.I, Name,
                       "'" + Name + "' is accessed (" + describe(Use.I) +
                           ") after being freed (" + describe(Free.I) +
                           ")",
                       std::move(Witness));
          }
          for (const PtrAccess &Other : W.Frees) {
            if (Other.InF != F || Other.I == Free.I)
              continue;
            SyncPathQuery Q;
            Q.From = Free.I;
            Q.To = Other.I;
            Q.Blockers.insert(A);
            std::vector<std::string> Witness;
            if (!existsSyncFreePath(Q, Ctx.BI, FL->DT, &Witness))
              continue;
            Ctx.report(LintKind::UseAfterFree, F, Other.I, Name,
                       "'" + Name + "' is freed twice (" +
                           describe(Free.I) + " then " +
                           describe(Other.I) + ")",
                       std::move(Witness));
          }
        }

        if (Escapes)
          continue; // The pointer may be freed through memory; don't
                    // judge completeness.
        if (W.Frees.empty()) {
          // Only report when a return is actually reachable (a kernel
          // always has one; defensive for synthetic IR).
          SyncPathQuery Q;
          Q.From = A;
          if (existsSyncFreePath(Q, Ctx.BI, FL->DT))
            Ctx.report(LintKind::AllocFreePairing, F, A, Name,
                       "allocation '" + Name + "' (" + describe(A) +
                           ") is never freed");
          continue;
        }
        bool LocalFree = false;
        SyncPathQuery Q;
        Q.From = A;
        Q.Blockers.insert(A); // Re-allocation starts a new object.
        for (const PtrAccess &Free : W.Frees)
          if (Free.InF == F) {
            LocalFree = true;
            Q.Blockers.insert(Free.I);
          }
        std::vector<std::string> Witness;
        if (LocalFree && existsSyncFreePath(Q, Ctx.BI, FL->DT, &Witness))
          Ctx.report(LintKind::AllocFreePairing, F, A, Name,
                     "allocation '" + Name + "' (" + describe(A) +
                         ") is not freed on every path to the function "
                         "exit",
                     std::move(Witness));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Check (d): SPMD guard protocol
//===----------------------------------------------------------------------===//

void checkGuardProtocol(LintContext &Ctx, FunctionLint &FL) {
  if (!FL.IsKernel)
    return;
  for (const GuardShape &G : FL.Guards)
    if (!G.WellFormed)
      Ctx.report(LintKind::GuardProtocol, FL.F, G.Br, "",
                 "main-thread guard in block '" + blockLabel(G.PreBB) +
                     "' violates the Fig. 7 barrier protocol: " +
                     G.Problem);

  // In an SPMDzed kernel every uniform side effect belongs inside a
  // guard: a uniform store outside one is executed (and raced on) by the
  // whole team.
  if (!FL.IsSPMDKernel || FL.Guards.empty())
    return;
  for (BasicBlock *BB : *FL.F) {
    if (FL.GuardedBlocks.count(BB) || FL.WorkerOnly.count(BB))
      continue;
    bool MainOnly = FL.isMainOnly(BB);
    if (MainOnly)
      continue;
    for (Instruction *I : *BB) {
      auto *SI = dyn_cast<StoreInst>(I);
      if (!SI)
        continue;
      const Value *Root = pointerRoot(SI->getPointerOperand());
      if (isa<AllocaInst>(Root))
        continue; // Thread-private.
      if (const auto *RootInst = dyn_cast<Instruction>(Root))
        if (isAllocCall(RootInst)) {
          FunctionLint *RFL = Ctx.lintOf(RootInst->getParent()->getParent());
          if (!RFL || !RFL->isMainOnly(RootInst->getParent()))
            continue; // Per-thread allocation.
        }
      if (!FL.TVA.getShape(SI->getPointerOperand()).isUniform())
        continue;
      Ctx.report(LintKind::GuardProtocol, FL.F, SI, "",
                 "uniform side effect (" + describe(SI) +
                     ") outside a main-thread guard in an SPMD kernel; "
                     "every thread performs this write");
    }
  }
}

//===----------------------------------------------------------------------===//
// Data-mapping staleness (OMP242-244)
//===----------------------------------------------------------------------===//

/// Checks each kernel parameter's declared-or-inferred mapping against its
/// MemoryAccessSummary (docs/data-mapping.md). Kernels whose parameters all
/// carry the implicit tofrom default are skipped outright: the default is
/// transfer-correct by construction, so existing modules produce no
/// findings and the summary analysis is only built when metadata exists.
void checkDataMapping(LintContext &Ctx) {
  bool AnyMapped = false;
  for (Function *F : Ctx.Checked)
    if (F->isKernel() && !F->getKernelEnvironment().ParamMappings.empty())
      AnyMapped = true;
  if (!AnyMapped)
    return;

  MemoryAccessSummaryAnalysis Summaries(Ctx.M);
  for (Function *K : Ctx.Checked) {
    if (!K->isKernel() || K->getKernelEnvironment().ParamMappings.empty())
      continue;
    const KernelEnvironment &Env = K->getKernelEnvironment();
    for (unsigned I = 0; I < K->arg_size(); ++I) {
      if (!K->getArg(I)->getType()->isPointerTy())
        continue;
      ParamMapping PM = kernelParamMapping(Env, I);
      if (!PM.DeclaredExplicit && !PM.InferenceRan)
        continue; // Implicit tofrom default: always transfer-correct.
      MapKind Eff = PM.effective();
      PointerAccessSummary S = Summaries.argSummary(K, I);
      std::string Name = K->getArg(I)->getName();
      if (Name.empty())
        Name = "arg" + std::to_string(I);
      std::string Where =
          "parameter '" + Name + "' (#" + std::to_string(I) + ")";

      // MayRead/MayWrite/MayReadBeforeWrite are evidence of real accesses
      // even when the walk also hit something Unknown, so the staleness
      // checks may fire alongside Unknown; the redundancy check needs a
      // *never accesses* proof and therefore requires a complete walk.
      if (S.MayReadBeforeWrite && !mapCopiesToDevice(Eff))
        Ctx.report(LintKind::StaleHostRead, K, nullptr, Name,
                   "stale-host read: " + Where + " is mapped map(" +
                       mapKindName(Eff) + ": " + Name +
                       ") but the kernel may read it before any write; "
                       "host data never reaches the device");
      if (S.MayWrite && !mapCopiesFromDevice(Eff))
        Ctx.report(LintKind::StaleDeviceRead, K, nullptr, Name,
                   "stale-device read: " + Where + " is mapped map(" +
                       mapKindName(Eff) + ": " + Name +
                       ") but the kernel may write it; the host never "
                       "observes the device results");
      if (PM.DeclaredExplicit && !S.Unknown) {
        bool RedundantIn = mapCopiesToDevice(Eff) && !S.MayReadBeforeWrite;
        bool RedundantOut = mapCopiesFromDevice(Eff) && !S.MayWrite;
        if (RedundantIn || RedundantOut)
          Ctx.report(
              LintKind::RedundantRoundTrip, K, nullptr, Name,
              "redundant round-trip: declared map(" +
                  std::string(mapKindName(Eff)) + ": " + Name + ") but " +
                  Where + " is " + pointerAccessClassName(S.classify()) +
                  "; map(" + mapKindName(minimalMapKind(S.classify())) +
                  ": " + Name + ") suffices");
      }
    }
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

LintResult ompgpu::runOMPLint(const Module &M, const LintOptions &Opts) {
  LintContext Ctx(M, Opts);
  for (Function *F : Ctx.Checked) {
    FunctionLint *FL = Ctx.lintOf(F);
    if (Opts.CheckBarrierDivergence)
      checkBarrierDivergence(Ctx, *FL);
    if (Opts.CheckGuardProtocol)
      checkGuardProtocol(Ctx, *FL);
  }
  if (Opts.CheckSharedRaces)
    checkSharedRaces(Ctx);
  if (Opts.CheckAllocFreePairing)
    checkAllocFreePairing(Ctx);
  if (Opts.CheckDataMapping)
    checkDataMapping(Ctx);
  LintResult R;
  R.Findings = std::move(Ctx.Findings);
  return R;
}
