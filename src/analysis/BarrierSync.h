//===- analysis/BarrierSync.h - Barrier & sync path facts -------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Barrier-synchronization facts for the device-IR lint (OMPLint): which
/// calls execute a team-wide barrier (directly or transitively through the
/// call graph), and a predicate-consistent CFG path search. The path search
/// understands per-thread-stable branch predicates — `hw_tid == 0`
/// main-thread guards, `__kmpc_is_spmd_exec_mode` dispatch, the
/// `__kmpc_target_init == -1` kernel entry — so correlated branches (the
/// Fig. 4b alloc/free diamonds, SPMDzation's repeated guards) do not
/// produce infeasible witness paths.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_ANALYSIS_BARRIERSYNC_H
#define OMPGPU_ANALYSIS_BARRIERSYNC_H

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace ompgpu {

class BasicBlock;
class DominatorTree;
class Function;
class Instruction;
class Module;
class Value;

//===----------------------------------------------------------------------===//
// Stable branch predicates
//===----------------------------------------------------------------------===//

/// A branch condition that is constant for one thread over one kernel
/// execution. Two branches on the same predicate kind always take the same
/// edge within a thread, even when the condition is recomputed (the
/// runtime queries are pure for the duration of the kernel).
struct StablePredicate {
  enum Kind : uint8_t {
    None,          ///< Not a recognized stable predicate.
    IsSPMD,        ///< __kmpc_is_spmd_exec_mode() != 0
    IsMainTid0,    ///< __kmpc_get_hardware_thread_id_in_block() == 0
    IsMainInit,    ///< __kmpc_target_init(...) == -1
    IsGenericMain, ///< __kmpc_is_generic_main_thread(...) != 0
  };
  Kind K = None;
  /// True when the recognized condition is the negation of the canonical
  /// form (e.g. `icmp ne %tid, 0`).
  bool Negated = false;

  explicit operator bool() const { return K != None; }
};

/// Syntactically classifies \p Cond as a stable predicate, looking through
/// `xor x, true` negations and both icmp operand orders.
StablePredicate classifyStablePredicate(const Value *Cond);

//===----------------------------------------------------------------------===//
// Barrier facts
//===----------------------------------------------------------------------===//

/// Module-wide barrier knowledge.
class BarrierInfo {
  std::set<const Function *> MayBarrier;

public:
  explicit BarrierInfo(const Module &M);

  /// True for a direct call to a team-wide barrier
  /// (__kmpc_barrier / __kmpc_barrier_simple_spmd).
  static bool isBarrierCall(const Instruction *I);

  /// True if executing \p I may involve a team-wide synchronization:
  /// direct barriers, runtime fork/join entry points (__kmpc_target_init,
  /// __kmpc_parallel_51, ...), calls into functions that transitively
  /// barrier, and — conservatively — indirect calls.
  bool maySynchronize(const Instruction *I) const;

  /// Functions that may execute a barrier somewhere in their body
  /// (transitively over direct calls).
  const std::set<const Function *> &mayBarrierFunctions() const {
    return MayBarrier;
  }
};

//===----------------------------------------------------------------------===//
// Predicate-consistent path search
//===----------------------------------------------------------------------===//

/// A query for an intra-function CFG path that starts right after \p From
/// (or, when \p From is a terminator, at its successors).
struct SyncPathQuery {
  /// Path origin; the search begins at the next instruction.
  const Instruction *From = nullptr;
  /// Path target. Null means "any return instruction".
  const Instruction *To = nullptr;
  /// When set, any may-synchronize call kills the path (used to ask for a
  /// barrier-free path between two memory accesses).
  bool StopAtSync = false;
  /// Instructions that kill the path (e.g. the free sites when proving a
  /// deallocation can be bypassed, or an allocation site so a loop
  /// back-edge that re-allocates does not extend the old object's paths).
  std::set<const Instruction *> Blockers;
  /// Blocks that kill the path on entry (e.g. a divergent branch's
  /// reconvergence point when asking whether a barrier sits inside the
  /// divergent region).
  std::set<const BasicBlock *> BlockedBlocks;
};

/// Returns true if a predicate-consistent path matching \p Q exists.
/// Branches whose condition classifies as a stable predicate are pinned to
/// one edge once decided — either by a dominating branch of \p Q.From's
/// block or by the first traversal — so a path cannot, say, enter one
/// main-thread guard and skip the next. On success \p Witness (if given)
/// receives the block labels of one such path.
bool existsSyncFreePath(const SyncPathQuery &Q, const BarrierInfo &BI,
                        const DominatorTree &DT,
                        std::vector<std::string> *Witness = nullptr);

} // namespace ompgpu

#endif // OMPGPU_ANALYSIS_BARRIERSYNC_H
