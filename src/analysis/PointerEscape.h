//===- analysis/PointerEscape.h - Inter-procedural escape check -*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inter-procedural pointer escape analysis: follows all uses of a pointer
/// (through GEPs, casts, phis, selects, and into callees) and reports
/// whether it may become visible to another thread. This is the first of
/// the two HeapToStack checks from Sec. IV-A: "follow all uses of the heap
/// pointer inter-procedurally and report if any of the uses might expose
/// the pointer to another thread".
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_ANALYSIS_POINTERESCAPE_H
#define OMPGPU_ANALYSIS_POINTERESCAPE_H

#include <functional>
#include <string>

namespace ompgpu {

class CallInst;
class Instruction;
class Value;

/// How a call treats a pointer argument.
enum class ArgCaptureKind : uint8_t {
  NoCapture,     ///< The callee does not retain/expose the pointer.
  Captures,      ///< The callee may expose the pointer (conservative).
  InspectCallee, ///< Recurse into the callee's body.
};

/// Result of an escape query.
struct EscapeResult {
  bool Escapes = false;
  /// The instruction that caused the escape (null if none).
  const Instruction *EscapeSite = nullptr;
  /// Human-readable reason, used in optimization remarks.
  std::string Reason;
};

/// Configuration hooks for the escape walk.
struct EscapeConfig {
  /// Classifies pointer argument \p ArgIdx of \p CI. The default treats
  /// declarations as capturing and definitions as inspectable.
  std::function<ArgCaptureKind(const CallInst &, unsigned ArgIdx)>
      ClassifyCallArg;
  /// Recursion bound on callee inspection.
  unsigned MaxDepth = 8;
};

/// Returns whether \p Ptr (or any pointer derived from it) may escape to
/// another thread.
EscapeResult analyzePointerEscape(const Value *Ptr,
                                  const EscapeConfig &Config);

} // namespace ompgpu

#endif // OMPGPU_ANALYSIS_POINTERESCAPE_H
