//===- analysis/CFG.h - CFG traversal helpers -------------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow graph traversal orders used by the dataflow analyses.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_ANALYSIS_CFG_H
#define OMPGPU_ANALYSIS_CFG_H

#include <vector>

namespace ompgpu {

class BasicBlock;
class Function;

/// Returns the blocks of \p F in reverse post-order from the entry.
/// Unreachable blocks are excluded.
std::vector<BasicBlock *> reversePostOrder(const Function &F);

/// Returns the blocks of \p F in post-order from the entry.
std::vector<BasicBlock *> postOrder(const Function &F);

/// Returns true if \p To is reachable from \p From along CFG edges
/// (inclusive: a block reaches itself).
bool isReachableFrom(const BasicBlock *From, const BasicBlock *To);

} // namespace ompgpu

#endif // OMPGPU_ANALYSIS_CFG_H
