//===- analysis/CallGraph.cpp - Module call graph with SCCs ----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "ir/Module.h"
#include "support/STLExtras.h"

#include <algorithm>

using namespace ompgpu;

CallGraph::CallGraph(const Module &M) {
  std::vector<Function *> Funcs = M.functions();
  for (Function *F : Funcs) {
    Callees[F]; // ensure node exists
    CallSitesOf[F];
    if (F->hasAddressTaken())
      AddressTaken.insert(F);
  }

  for (Function *F : Funcs) {
    for (BasicBlock *BB : *F) {
      for (Instruction *I : *BB) {
        auto *CI = dyn_cast<CallInst>(I);
        if (!CI)
          continue;
        Function *Callee = CI->getCalledFunction();
        if (!Callee)
          continue;
        if (!is_contained(Callees[F], Callee))
          Callees[F].push_back(Callee);
        CallSitesOf[Callee].push_back(CI);
      }
    }
  }

  // Tarjan's SCC algorithm (iterative to avoid deep recursion).
  std::map<const Function *, int> Index, LowLink;
  std::map<const Function *, bool> OnStack;
  std::vector<Function *> Stack;
  int NextIndex = 0;

  struct Frame {
    Function *F;
    size_t NextChild;
  };

  for (Function *Root : Funcs) {
    if (Index.count(Root))
      continue;
    std::vector<Frame> CallStack{{Root, 0}};
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!CallStack.empty()) {
      Frame &Top = CallStack.back();
      const std::vector<Function *> &Children = Callees[Top.F];
      if (Top.NextChild < Children.size()) {
        Function *Child = Children[Top.NextChild++];
        if (!Index.count(Child)) {
          Index[Child] = LowLink[Child] = NextIndex++;
          Stack.push_back(Child);
          OnStack[Child] = true;
          CallStack.push_back({Child, 0});
        } else if (OnStack[Child]) {
          LowLink[Top.F] = std::min(LowLink[Top.F], Index[Child]);
        }
        continue;
      }
      // All children processed.
      if (LowLink[Top.F] == Index[Top.F]) {
        std::vector<Function *> SCC;
        while (true) {
          Function *V = Stack.back();
          Stack.pop_back();
          OnStack[V] = false;
          SCC.push_back(V);
          if (V == Top.F)
            break;
        }
        SCCsBottomUp.push_back(std::move(SCC));
      }
      Function *Done = Top.F;
      CallStack.pop_back();
      if (!CallStack.empty())
        LowLink[CallStack.back().F] =
            std::min(LowLink[CallStack.back().F], LowLink[Done]);
    }
  }
}

const std::vector<Function *> &CallGraph::callees(const Function *F) const {
  static const std::vector<Function *> Empty;
  auto It = Callees.find(F);
  return It == Callees.end() ? Empty : It->second;
}

const std::vector<CallInst *> &
CallGraph::callSitesOf(const Function *F) const {
  static const std::vector<CallInst *> Empty;
  auto It = CallSitesOf.find(F);
  return It == CallSitesOf.end() ? Empty : It->second;
}

std::set<Function *> CallGraph::reachableFrom(Function *Root) const {
  std::set<Function *> Reached;
  std::vector<Function *> Worklist{Root};
  while (!Worklist.empty()) {
    Function *F = Worklist.back();
    Worklist.pop_back();
    if (!Reached.insert(F).second)
      continue;
    for (Function *Callee : callees(F))
      Worklist.push_back(Callee);
    // Indirect calls may reach any address-taken function.
    bool HasIndirect = false;
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (auto *CI = dyn_cast<CallInst>(I))
          if (CI->isIndirectCall())
            HasIndirect = true;
    if (HasIndirect)
      for (const Function *AT : AddressTaken)
        Worklist.push_back(const_cast<Function *>(AT));
  }
  return Reached;
}
