//===- analysis/CallGraph.h - Module call graph with SCCs -------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The module call graph: direct call edges, address-taken functions, and
/// Tarjan SCCs in bottom-up order. The paper's pass runs "early on the
/// entire module and again late on each strongly connected component of
/// the call graph"; the SCC order here drives that late run and the
/// bottom-up attribute inference.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_ANALYSIS_CALLGRAPH_H
#define OMPGPU_ANALYSIS_CALLGRAPH_H

#include <map>
#include <set>
#include <vector>

namespace ompgpu {

class CallInst;
class Function;
class Module;

/// Call graph over one module.
class CallGraph {
  std::map<const Function *, std::vector<Function *>> Callees;
  std::map<const Function *, std::vector<CallInst *>> CallSitesOf;
  std::set<const Function *> AddressTaken;
  std::vector<std::vector<Function *>> SCCsBottomUp;

public:
  explicit CallGraph(const Module &M);

  /// Direct callees of \p F (deduplicated).
  const std::vector<Function *> &callees(const Function *F) const;

  /// All direct call sites that invoke \p F.
  const std::vector<CallInst *> &callSitesOf(const Function *F) const;

  /// True if \p F has its address taken (may be called indirectly).
  bool isAddressTaken(const Function *F) const {
    return AddressTaken.count(F);
  }

  /// Functions whose address is taken anywhere in the module.
  const std::set<const Function *> &addressTakenFunctions() const {
    return AddressTaken;
  }

  /// Strongly connected components in bottom-up (callees first) order.
  const std::vector<std::vector<Function *>> &sccsBottomUp() const {
    return SCCsBottomUp;
  }

  /// Returns every function transitively reachable from \p Root through
  /// direct calls (including \p Root). Indirect calls add all
  /// address-taken functions with a compatible signature.
  std::set<Function *> reachableFrom(Function *Root) const;
};

} // namespace ompgpu

#endif // OMPGPU_ANALYSIS_CALLGRAPH_H
