//===- analysis/BarrierSync.cpp - Barrier & sync path facts ----------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "analysis/BarrierSync.h"

#include "analysis/Dominators.h"
#include "ir/BasicBlock.h"
#include "ir/Constant.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"

#include <cassert>
#include <map>

using namespace ompgpu;

//===----------------------------------------------------------------------===//
// Stable branch predicates
//===----------------------------------------------------------------------===//

/// Returns the direct callee name of \p V if it is a direct call.
static const std::string *calleeName(const Value *V) {
  const auto *CI = dyn_cast<CallInst>(V);
  if (!CI)
    return nullptr;
  const Function *Callee = CI->getCalledFunction();
  return Callee ? &Callee->getName() : nullptr;
}

static StablePredicate negate(StablePredicate P) {
  if (P)
    P.Negated = !P.Negated;
  return P;
}

StablePredicate ompgpu::classifyStablePredicate(const Value *Cond) {
  // Truthiness of a runtime query used directly as an i1.
  if (const std::string *Name = calleeName(Cond)) {
    if (*Name == "__kmpc_is_spmd_exec_mode")
      return {StablePredicate::IsSPMD, false};
    if (*Name == "__kmpc_is_generic_main_thread")
      return {StablePredicate::IsGenericMain, false};
    return {};
  }

  // `xor x, true` negation (emitted for the "else" arms of runtime-mode
  // dispatch diamonds).
  if (const auto *BO = dyn_cast<BinOpInst>(Cond)) {
    if (BO->getBinaryOp() != BinaryOp::Xor)
      return {};
    const auto *CL = dyn_cast<ConstantInt>(BO->getLHS());
    const auto *CR = dyn_cast<ConstantInt>(BO->getRHS());
    if (CR && CR->getValue() == 1)
      return negate(classifyStablePredicate(BO->getLHS()));
    if (CL && CL->getValue() == 1)
      return negate(classifyStablePredicate(BO->getRHS()));
    return {};
  }

  const auto *Cmp = dyn_cast<ICmpInst>(Cond);
  if (!Cmp || (Cmp->getPredicate() != ICmpPred::EQ &&
               Cmp->getPredicate() != ICmpPred::NE))
    return {};
  bool IsEQ = Cmp->getPredicate() == ICmpPred::EQ;

  const Value *Call = Cmp->getLHS();
  const auto *C = dyn_cast<ConstantInt>(Cmp->getRHS());
  if (!C) {
    C = dyn_cast<ConstantInt>(Cmp->getLHS());
    Call = Cmp->getRHS();
  }
  const std::string *Name = C ? calleeName(Call) : nullptr;
  if (!Name)
    return {};

  // Canonical forms: tid == 0, init == -1, mode != 0.
  if (*Name == "__kmpc_get_hardware_thread_id_in_block" &&
      C->getValue() == 0)
    return {StablePredicate::IsMainTid0, !IsEQ};
  if (*Name == "__kmpc_target_init" && C->getValue() == -1)
    return {StablePredicate::IsMainInit, !IsEQ};
  if (*Name == "__kmpc_is_spmd_exec_mode" && C->getValue() == 0)
    return {StablePredicate::IsSPMD, IsEQ};
  if (*Name == "__kmpc_is_generic_main_thread" && C->getValue() == 0)
    return {StablePredicate::IsGenericMain, IsEQ};
  return {};
}

//===----------------------------------------------------------------------===//
// Barrier facts
//===----------------------------------------------------------------------===//

static bool isDirectBarrierName(const std::string &Name) {
  return Name == "__kmpc_barrier" || Name == "__kmpc_barrier_simple_spmd";
}

/// Runtime entry points whose implementation synchronizes the team
/// (fork/join protocol, kernel setup/teardown).
static bool isSyncRuntimeName(const std::string &Name) {
  return isDirectBarrierName(Name) || Name == "__kmpc_target_init" ||
         Name == "__kmpc_target_deinit" || Name == "__kmpc_parallel_51" ||
         Name == "__kmpc_kernel_parallel" ||
         Name == "__kmpc_kernel_end_parallel";
}

BarrierInfo::BarrierInfo(const Module &M) {
  // Seed with the synchronizing runtime entry points, then propagate
  // "may execute a barrier" bottom-up to a fixpoint over direct calls.
  // Indirect calls conservatively make the caller a may-barrier function.
  std::vector<Function *> Fns = M.functions();
  for (Function *F : Fns)
    if (isSyncRuntimeName(F->getName()))
      MayBarrier.insert(F);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (Function *F : Fns) {
      if (MayBarrier.count(F) || F->isDeclaration())
        continue;
      for (BasicBlock *BB : *F) {
        for (Instruction *I : *BB) {
          const auto *CI = dyn_cast<CallInst>(I);
          if (!CI)
            continue;
          const Function *Callee = CI->getCalledFunction();
          if (!Callee || MayBarrier.count(Callee)) {
            MayBarrier.insert(F);
            Changed = true;
            break;
          }
        }
        if (MayBarrier.count(F))
          break;
      }
    }
  }
}

bool BarrierInfo::isBarrierCall(const Instruction *I) {
  const std::string *Name = calleeName(I);
  return Name && isDirectBarrierName(*Name);
}

bool BarrierInfo::maySynchronize(const Instruction *I) const {
  const auto *CI = dyn_cast<CallInst>(I);
  if (!CI)
    return false;
  const Function *Callee = CI->getCalledFunction();
  if (!Callee)
    return true; // Indirect call: assume it may barrier.
  return MayBarrier.count(Callee) != 0;
}

//===----------------------------------------------------------------------===//
// Predicate-consistent path search
//===----------------------------------------------------------------------===//

namespace {

/// 2 bits per stable-predicate kind: 0 unknown, 1 true, 2 false.
using PredState = uint32_t;

unsigned predOf(PredState S, StablePredicate::Kind K) {
  return (S >> (2 * (unsigned)K)) & 3u;
}

PredState withPred(PredState S, StablePredicate::Kind K, bool V) {
  unsigned Shift = 2 * (unsigned)K;
  return (S & ~(3u << Shift)) | ((V ? 1u : 2u) << Shift);
}

struct PathSearch {
  const SyncPathQuery &Q;
  const BarrierInfo &BI;
  std::set<std::pair<const BasicBlock *, PredState>> Visited;
  std::vector<const BasicBlock *> Path;

  PathSearch(const SyncPathQuery &Q, const BarrierInfo &BI) : Q(Q), BI(BI) {}

  bool walk(const BasicBlock *BB, size_t StartIdx, PredState Preds) {
    if (StartIdx == 0) {
      if (Q.BlockedBlocks.count(BB))
        return false;
      auto Key = std::make_pair(BB, Preds);
      if (!Visited.insert(Key).second)
        return false;
    }
    Path.push_back(BB);
    std::vector<Instruction *> Insts = BB->getInstructions();
    for (size_t I = StartIdx, E = Insts.size(); I != E; ++I) {
      Instruction *Inst = Insts[I];
      if (Inst == Q.To)
        return true;
      if (Q.Blockers.count(Inst)) {
        Path.pop_back();
        return false;
      }
      if (Q.StopAtSync && BI.maySynchronize(Inst)) {
        Path.pop_back();
        return false;
      }
      if (isa<RetInst>(Inst) && !Q.To)
        return true;
      if (!Inst->isTerminator())
        continue;

      const auto *Br = dyn_cast<BrInst>(Inst);
      if (!Br) { // ret (with a target pending) or unreachable: dead end.
        Path.pop_back();
        return false;
      }
      if (!Br->isConditional()) {
        if (walk(Br->getSuccessor(0), 0, Preds))
          return true;
        Path.pop_back();
        return false;
      }

      StablePredicate P = classifyStablePredicate(Br->getCondition());
      if (P) {
        // Predicate value implied by taking the true edge.
        bool TrueEdgeVal = !P.Negated;
        unsigned Cur = predOf(Preds, P.K);
        if (Cur != 0) {
          bool Val = Cur == 1;
          unsigned Edge = (Val == TrueEdgeVal) ? 0 : 1;
          if (walk(Br->getSuccessor(Edge), 0, Preds))
            return true;
          Path.pop_back();
          return false;
        }
        if (walk(Br->getSuccessor(0), 0,
                 withPred(Preds, P.K, TrueEdgeVal)))
          return true;
        if (walk(Br->getSuccessor(1), 0,
                 withPred(Preds, P.K, !TrueEdgeVal)))
          return true;
        Path.pop_back();
        return false;
      }

      if (walk(Br->getSuccessor(0), 0, Preds))
        return true;
      if (walk(Br->getSuccessor(1), 0, Preds))
        return true;
      Path.pop_back();
      return false;
    }
    Path.pop_back();
    return false; // Block without terminator (under construction).
  }
};

} // namespace

bool ompgpu::existsSyncFreePath(const SyncPathQuery &Q, const BarrierInfo &BI,
                                const DominatorTree &DT,
                                std::vector<std::string> *Witness) {
  assert(Q.From && "path query needs an origin");
  const BasicBlock *FromBB = Q.From->getParent();
  const Function *F = FromBB->getParent();

  // Pin every stable predicate already decided by a dominating branch of
  // the origin: a thread that reached `From` inside a main-thread guard is
  // the main thread for the rest of the walk.
  PredState Preds = 0;
  for (const BasicBlock *BB : *F) {
    const auto *Br = dyn_cast_or_null<BrInst>(BB->getTerminator());
    if (!Br || !Br->isConditional())
      continue;
    StablePredicate P = classifyStablePredicate(Br->getCondition());
    if (!P)
      continue;
    const BasicBlock *S0 = Br->getSuccessor(0);
    const BasicBlock *S1 = Br->getSuccessor(1);
    if (S0 == S1)
      continue;
    bool Dom0 = DT.dominates(S0, FromBB);
    bool Dom1 = DT.dominates(S1, FromBB);
    if (Dom0 == Dom1)
      continue;
    bool TrueEdgeVal = !P.Negated;
    Preds = withPred(Preds, P.K, Dom0 ? TrueEdgeVal : !TrueEdgeVal);
  }

  PathSearch Search(Q, BI);
  std::vector<Instruction *> Insts = FromBB->getInstructions();
  // Start right after the origin; a terminator origin re-processes itself
  // so the walk forks into its successors.
  size_t FromIdx = 0;
  for (size_t I = 0, E = Insts.size(); I != E; ++I)
    if (Insts[I] == Q.From) {
      FromIdx = Q.From->isTerminator() ? I : I + 1;
      break;
    }
  if (!Search.walk(FromBB, FromIdx, Preds))
    return false;
  if (Witness)
    for (const BasicBlock *BB : Search.Path)
      Witness->push_back(BB->getName().empty() ? "<block>" : BB->getName());
  return true;
}
