//===- analysis/MapInference.cpp - Minimal data-mapping inference ---------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "analysis/MapInference.h"

#include "core/Remarks.h"
#include "ir/Function.h"
#include "ir/Module.h"

using namespace ompgpu;

MapInferenceResult ompgpu::runMapInference(Module &M,
                                           RemarkCollector &Remarks) {
  MapInferenceResult Result;
  MemoryAccessSummaryAnalysis Summaries(M);

  for (Function *K : M.functions()) {
    if (!K->isKernel() || K->isDeclaration())
      continue;
    KernelEnvironment &Env = K->getKernelEnvironment();
    for (unsigned I = 0; I < K->arg_size(); ++I) {
      ParamMappingInfo Info;
      Info.Kernel = K->getName();
      Info.Index = I;
      Info.ParamName = K->getArg(I)->getName();
      Info.IsPointer = K->getArg(I)->getType()->isPointerTy();
      if (!Info.IsPointer) {
        Result.Params.push_back(Info);
        continue;
      }

      PointerAccessSummary S = Summaries.argSummary(K, I);
      Info.Class = S.classify();
      Info.Inferred = minimalMapKind(Info.Class);

      ParamMapping &PM = kernelParamMappingRef(Env, I);
      PM.Inferred = Info.Inferred;
      PM.InferenceRan = true;
      Info.Declared = PM.Declared;
      Info.DeclaredExplicit = PM.DeclaredExplicit;
      Info.Effective = PM.effective();

      std::string Desc = "parameter '" + Info.ParamName + "' (#" +
                         std::to_string(I) + ") of kernel '" + Info.Kernel +
                         "'";
      if (Info.DeclaredExplicit) {
        // Explicit map clauses are honored verbatim; the OMP242-244 lint
        // checkers diagnose them if they disagree with the summary.
      } else if (Info.Class == PointerAccessClass::Unknown) {
        ++Result.FallbackCount;
        Remarks.emit(RemarkId::OMP241, /*Missed=*/true, K->getName(),
                     "conservative map(tofrom: " + Info.ParamName + ") for " +
                         Desc + ": access pattern escapes the summary walk");
      } else if (Info.Inferred != MapKind::ToFrom) {
        ++Result.MinimalCount;
        Remarks.emit(RemarkId::OMP240, /*Missed=*/false, K->getName(),
                     "inferred minimal map(" +
                         std::string(mapKindName(Info.Inferred)) + ": " +
                         Info.ParamName + ") for " + Desc + " (" +
                         pointerAccessClassName(Info.Class) + ")");
      }
      Result.Params.push_back(Info);
    }
  }
  return Result;
}
