//===- analysis/Dominators.h - (Post)dominator trees ------------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator and post-dominator trees computed with the Cooper-Harvey-
/// Kennedy iterative algorithm. HeapToStack uses post-dominance to prove
/// that a deallocation is always reached; SPMDzation uses dominance for
/// guard placement.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_ANALYSIS_DOMINATORS_H
#define OMPGPU_ANALYSIS_DOMINATORS_H

#include <map>
#include <vector>

namespace ompgpu {

class BasicBlock;
class Function;
class Instruction;

/// A dominator tree (or post-dominator tree when built reversed).
class DominatorTree {
  std::map<const BasicBlock *, const BasicBlock *> IDom;
  std::map<const BasicBlock *, unsigned> Order;
  bool Post;

public:
  /// Builds the (post)dominator tree for \p F.
  explicit DominatorTree(const Function &F, bool PostDominators = false);

  bool isPostDominatorTree() const { return Post; }

  /// Returns the immediate dominator of \p BB, or null for the root or
  /// unreachable blocks.
  const BasicBlock *getIDom(const BasicBlock *BB) const;

  /// True if \p A dominates \p B (reflexive). Unreachable blocks are
  /// dominated by everything, matching LLVM's convention.
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// True if instruction \p A dominates instruction \p B: same block and
  /// earlier, or A's block dominates B's block.
  bool dominates(const Instruction *A, const Instruction *B) const;
};

/// Convenience wrapper for post-dominator queries. For functions with
/// multiple exit blocks a virtual exit is used as the root.
class PostDominatorTree : public DominatorTree {
public:
  explicit PostDominatorTree(const Function &F)
      : DominatorTree(F, /*PostDominators=*/true) {}
};

} // namespace ompgpu

#endif // OMPGPU_ANALYSIS_DOMINATORS_H
