//===- analysis/MapInference.h - Minimal data-mapping inference -*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MapInference pipeline stage (docs/data-mapping.md): turns the
/// MemoryAccessSummary classification of each kernel parameter into the
/// minimal map clause — read-only becomes `to`, write-first `from`, dead
/// `alloc` — and records it in the kernel's KernelEnvironment for the
/// launch harness. Explicit front-end map clauses are a user contract and
/// are never overridden. Each narrowed mapping emits OMP240; each pointer
/// the analysis could not classify falls back to `tofrom` with an OMP241
/// missed-optimization remark.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_ANALYSIS_MAPINFERENCE_H
#define OMPGPU_ANALYSIS_MAPINFERENCE_H

#include "analysis/MemoryAccessSummary.h"
#include "ir/MapKind.h"

#include <string>
#include <vector>

namespace ompgpu {

class Module;
class RemarkCollector;

/// The cheapest mapping that preserves semantics for an access class:
/// host data the kernel may consume must be copied in, data the kernel may
/// produce must be copied out, and everything else stays on the device.
inline MapKind minimalMapKind(PointerAccessClass C) {
  switch (C) {
  case PointerAccessClass::Dead:
    return MapKind::Alloc;
  case PointerAccessClass::ReadOnly:
    return MapKind::To;
  case PointerAccessClass::WriteFirst:
    return MapKind::From;
  case PointerAccessClass::ReadWrite:
  case PointerAccessClass::Unknown:
    return MapKind::ToFrom;
  }
  return MapKind::ToFrom;
}

/// One kernel parameter's mapping decision, as recorded in the compile
/// report's `mapping` section (docs/compile-report.md).
struct ParamMappingInfo {
  std::string Kernel;
  unsigned Index = 0;
  std::string ParamName;
  bool IsPointer = false;
  PointerAccessClass Class = PointerAccessClass::Unknown;
  MapKind Declared = MapKind::ToFrom;
  bool DeclaredExplicit = false;
  MapKind Inferred = MapKind::ToFrom;
  MapKind Effective = MapKind::ToFrom;
};

struct MapInferenceResult {
  std::vector<ParamMappingInfo> Params;
  /// Pointer parameters narrowed below the tofrom default (OMP240).
  unsigned MinimalCount = 0;
  /// Pointer parameters left at the conservative fallback (OMP241).
  unsigned FallbackCount = 0;
};

/// Stage name in pass timelines and the compile report.
inline constexpr const char *MapInferencePassName = "map-inference";

/// Runs the inference over every kernel of \p M, records the inferred kinds
/// in each kernel's KernelEnvironment, and emits OMP240/OMP241 remarks.
MapInferenceResult runMapInference(Module &M, RemarkCollector &Remarks);

} // namespace ompgpu

#endif // OMPGPU_ANALYSIS_MAPINFERENCE_H
