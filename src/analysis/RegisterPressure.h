//===- analysis/RegisterPressure.h - SSA liveness & pressure ----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SSA liveness and maximum register pressure estimation. The simulator
/// derives per-kernel register usage (Fig. 10 "# Regs") and occupancy from
/// this, including the spurious-call-edge penalty for address-taken
/// parallel regions that the custom state machine rewrite removes (the
/// PR46450 effect described in Sec. IV-B2).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_ANALYSIS_REGISTERPRESSURE_H
#define OMPGPU_ANALYSIS_REGISTERPRESSURE_H

#include <map>
#include <set>

namespace ompgpu {

class BasicBlock;
class Function;
class Value;

/// Block-level SSA liveness for one function.
class Liveness {
  std::map<const BasicBlock *, std::set<const Value *>> LiveInMap;
  std::map<const BasicBlock *, std::set<const Value *>> LiveOutMap;

public:
  explicit Liveness(const Function &F);

  const std::set<const Value *> &liveIn(const BasicBlock *BB) const;
  const std::set<const Value *> &liveOut(const BasicBlock *BB) const;
};

/// Returns the register cost of one SSA value in 32-bit register units.
unsigned getValueRegisterUnits(const Value *V);

/// Returns the maximum register pressure of \p F in 32-bit units: the
/// largest sum of simultaneously live SSA value sizes at any program point,
/// plus the function's arguments at entry.
unsigned computeMaxRegisterPressure(const Function &F);

} // namespace ompgpu

#endif // OMPGPU_ANALYSIS_REGISTERPRESSURE_H
