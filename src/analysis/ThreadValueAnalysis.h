//===- analysis/ThreadValueAnalysis.h - Uniformity & strides ----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies each SSA value by how it varies across the threads of a
/// warp: uniform, affine in the thread id with a known byte stride, or
/// divergent. The GPU simulator's memory cost model uses the pointer
/// classification to charge coalesced vs. uncoalesced global accesses —
/// this is what makes the LLVM 12 warp-coalesced globalization scheme and
/// the paper's per-variable scheme measurably different (Fig. 11d).
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_ANALYSIS_THREADVALUEANALYSIS_H
#define OMPGPU_ANALYSIS_THREADVALUEANALYSIS_H

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace ompgpu {

class Function;
class Value;

/// Lattice describing how a value varies across threads in a warp.
struct ThreadShape {
  enum Kind : uint8_t {
    Unknown,   ///< Not yet computed (lattice top).
    Linear,    ///< Value = Stride * thread_id + uniform_base.
    Divergent, ///< Arbitrary per-thread variation (lattice bottom).
  };
  Kind K = Unknown;
  /// Stride per thread id step, in value units (bytes for pointers).
  /// Linear with Stride 0 means uniform.
  int64_t Stride = 0;

  static ThreadShape uniform() { return {Linear, 0}; }
  static ThreadShape linear(int64_t S) { return {Linear, S}; }
  static ThreadShape divergent() { return {Divergent, 0}; }

  bool isUniform() const { return K == Linear && Stride == 0; }
  bool isLinear() const { return K == Linear; }
  bool isDivergent() const { return K == Divergent || K == Unknown; }

  bool operator==(const ThreadShape &O) const {
    return K == O.K && Stride == O.Stride;
  }
};

/// Configuration: which calls produce thread ids / uniform values.
struct ThreadValueConfig {
  /// Calls to these functions yield the hardware thread id in the team
  /// (shape Linear with stride 1).
  std::set<std::string> ThreadIdFunctions;
  /// Calls to these functions yield team-uniform values (team id, team
  /// count, thread count, ...).
  std::set<std::string> UniformFunctions;
  /// Explicit result shapes for specific callees, e.g. the legacy
  /// warp-coalesced data-sharing push returns lane-strided pointers.
  std::map<std::string, ThreadShape> CallShapes;
  /// Shape assumed for function arguments. Kernel arguments are uniform
  /// (all threads observe the same kernel parameters); device function
  /// arguments are unknown and therefore divergent by default.
  ThreadShape ArgumentShape = ThreadShape::divergent();
};

/// Computes thread shapes for all values in \p F.
class ThreadValueAnalysis {
  std::map<const Value *, ThreadShape> Shapes;

public:
  ThreadValueAnalysis(const Function &F, const ThreadValueConfig &Config);

  /// Returns the shape of \p V (constants are uniform even if unlisted).
  ThreadShape getShape(const Value *V) const;
};

} // namespace ompgpu

#endif // OMPGPU_ANALYSIS_THREADVALUEANALYSIS_H
