//===- analysis/ThreadValueAnalysis.cpp - Uniformity & strides -------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ThreadValueAnalysis.h"
#include "analysis/CFG.h"
#include "ir/Function.h"

using namespace ompgpu;

namespace {

/// Stride arithmetic follows the IR's two's-complement wrapping; compute
/// in unsigned so overflow (huge constants scaling a stride) is
/// well-defined instead of UB.
int64_t addWrap(int64_t A, int64_t B) {
  return (int64_t)((uint64_t)A + (uint64_t)B);
}
int64_t subWrap(int64_t A, int64_t B) {
  return (int64_t)((uint64_t)A - (uint64_t)B);
}
int64_t mulWrap(int64_t A, int64_t B) {
  return (int64_t)((uint64_t)A * (uint64_t)B);
}
int64_t shlWrap(int64_t A, uint64_t B) {
  return B >= 64 ? 0 : (int64_t)((uint64_t)A << B);
}

/// Join in the Unknown > Linear > Divergent lattice.
ThreadShape join(ThreadShape A, ThreadShape B) {
  if (A.K == ThreadShape::Unknown)
    return B;
  if (B.K == ThreadShape::Unknown)
    return A;
  if (A == B)
    return A;
  return ThreadShape::divergent();
}

} // namespace

ThreadValueAnalysis::ThreadValueAnalysis(const Function &F,
                                         const ThreadValueConfig &Config) {
  if (F.isDeclaration())
    return;

  for (const Argument *A : F.args())
    Shapes[A] = Config.ArgumentShape;

  auto Get = [&](const Value *V) -> ThreadShape {
    if (isa<Constant>(V))
      return ThreadShape::uniform();
    auto It = Shapes.find(V);
    return It == Shapes.end() ? ThreadShape{} : It->second;
  };

  auto Transfer = [&](const Instruction *I) -> ThreadShape {
    switch (I->getOpcode()) {
    case ValueKind::Alloca:
      // Each thread's stack slot is distinct but local memory is
      // interleaved per-thread by the hardware; model as uniform so local
      // accesses are charged as cheap.
      return ThreadShape::uniform();
    case ValueKind::BinOp: {
      const auto *BO = cast<BinOpInst>(I);
      ThreadShape L = Get(BO->getLHS());
      ThreadShape R = Get(BO->getRHS());
      if (!L.isLinear() || !R.isLinear())
        return ThreadShape::divergent();
      switch (BO->getBinaryOp()) {
      case BinaryOp::Add:
        return ThreadShape::linear(addWrap(L.Stride, R.Stride));
      case BinaryOp::Sub:
        return ThreadShape::linear(subWrap(L.Stride, R.Stride));
      case BinaryOp::Mul: {
        // Linear only when one side is uniform and constant-scaled.
        if (L.Stride == 0) {
          if (const auto *CI = dyn_cast<ConstantInt>(BO->getLHS()))
            return ThreadShape::linear(mulWrap(CI->getValue(), R.Stride));
          return R.Stride == 0 ? ThreadShape::uniform()
                               : ThreadShape::divergent();
        }
        if (R.Stride == 0) {
          if (const auto *CI = dyn_cast<ConstantInt>(BO->getRHS()))
            return ThreadShape::linear(mulWrap(CI->getValue(), L.Stride));
          return ThreadShape::divergent();
        }
        return ThreadShape::divergent();
      }
      case BinaryOp::Shl: {
        if (R.Stride == 0)
          if (const auto *CI = dyn_cast<ConstantInt>(BO->getRHS()))
            return ThreadShape::linear(shlWrap(L.Stride,
                                               (uint64_t)CI->getValue()));
        return L.Stride == 0 && R.Stride == 0 ? ThreadShape::uniform()
                                              : ThreadShape::divergent();
      }
      default:
        // Other operations preserve uniformity only.
        return (L.Stride == 0 && R.Stride == 0) ? ThreadShape::uniform()
                                                : ThreadShape::divergent();
      }
    }
    case ValueKind::GEP: {
      const auto *GEP = cast<GEPInst>(I);
      ThreadShape Base = Get(GEP->getPointerOperand());
      if (!Base.isLinear())
        return ThreadShape::divergent();
      int64_t ByteStride = Base.Stride;
      Type *CurTy = GEP->getSourceElementType();
      for (unsigned Idx = 0, E = GEP->getNumIndices(); Idx != E; ++Idx) {
        ThreadShape S = Get(GEP->getIndex(Idx));
        if (!S.isLinear())
          return ThreadShape::divergent();
        uint64_t Scale;
        if (Idx == 0) {
          Scale = CurTy->getSizeInBytes();
        } else if (auto *AT = dyn_cast<ArrayType>(CurTy)) {
          CurTy = AT->getElementType();
          Scale = CurTy->getSizeInBytes();
        } else if (isa<StructType>(CurTy)) {
          // Struct field selection requires constant indices (uniform).
          if (S.Stride != 0)
            return ThreadShape::divergent();
          const auto *CI = dyn_cast<ConstantInt>(GEP->getIndex(Idx));
          if (!CI)
            return ThreadShape::divergent();
          CurTy = cast<StructType>(CurTy)->getElementType(CI->getValue());
          Scale = 0;
        } else {
          return ThreadShape::divergent();
        }
        ByteStride += S.Stride * (int64_t)Scale;
      }
      return ThreadShape::linear(ByteStride);
    }
    case ValueKind::Cast: {
      const auto *C = cast<CastInst>(I);
      ThreadShape S = Get(C->getSrc());
      switch (C->getCastOp()) {
      case CastOp::ZExt:
      case CastOp::SExt:
      case CastOp::Trunc:
      case CastOp::PtrToInt:
      case CastOp::IntToPtr:
      case CastOp::AddrSpaceCast:
        return S;
      default:
        return S.isUniform() ? ThreadShape::uniform()
                             : ThreadShape::divergent();
      }
    }
    case ValueKind::Select: {
      const auto *S = cast<SelectInst>(I);
      ThreadShape C = Get(S->getCondition());
      if (!C.isUniform())
        return ThreadShape::divergent();
      return join(Get(S->getTrueValue()), Get(S->getFalseValue()));
    }
    case ValueKind::Phi: {
      const auto *P = cast<PhiInst>(I);
      ThreadShape S;
      for (unsigned Idx = 0, E = P->getNumIncoming(); Idx != E; ++Idx)
        S = join(S, Get(P->getIncomingValue(Idx)));
      return S;
    }
    case ValueKind::Call: {
      const auto *CI = cast<CallInst>(I);
      const Function *Callee = CI->getCalledFunction();
      if (!Callee)
        return ThreadShape::divergent();
      if (Config.ThreadIdFunctions.count(Callee->getName()))
        return ThreadShape::linear(1);
      if (Config.UniformFunctions.count(Callee->getName()))
        return ThreadShape::uniform();
      if (auto It = Config.CallShapes.find(Callee->getName());
          It != Config.CallShapes.end())
        return It->second;
      return ThreadShape::divergent();
    }
    case ValueKind::ICmp:
    case ValueKind::FCmp: {
      const auto *U = cast<User>(I);
      bool AllUniform = Get(U->getOperand(0)).isUniform() &&
                        Get(U->getOperand(1)).isUniform();
      return AllUniform ? ThreadShape::uniform()
                        : ThreadShape::divergent();
    }
    case ValueKind::Math: {
      for (unsigned Idx = 0, E = I->getNumOperands(); Idx != E; ++Idx)
        if (!Get(I->getOperand(Idx)).isUniform())
          return ThreadShape::divergent();
      return ThreadShape::uniform();
    }
    case ValueKind::Load: {
      // All threads loading the same location observe the same value
      // (absent data races), so a uniform address yields a uniform value.
      const auto *LI = cast<LoadInst>(I);
      return Get(LI->getPointerOperand()).isUniform()
                 ? ThreadShape::uniform()
                 : ThreadShape::divergent();
    }
    case ValueKind::AtomicRMW:
    default:
      return ThreadShape::divergent();
    }
  };

  // Iterate to a fixed point (loops converge quickly: the lattice has
  // height 2 per value).
  std::vector<BasicBlock *> RPO = reversePostOrder(F);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const BasicBlock *BB : RPO) {
      for (const Instruction *I : *BB) {
        if (I->getType()->isVoidTy())
          continue;
        ThreadShape New = Transfer(I);
        ThreadShape &Slot = Shapes[I];
        // Monotone update: only move down the lattice.
        ThreadShape Joined = join(Slot, New);
        if (!(Joined == Slot)) {
          Slot = Joined;
          Changed = true;
        }
      }
    }
  }
}

ThreadShape ThreadValueAnalysis::getShape(const Value *V) const {
  if (isa<Constant>(V))
    return ThreadShape::uniform();
  auto It = Shapes.find(V);
  return It == Shapes.end() ? ThreadShape::divergent() : It->second;
}
