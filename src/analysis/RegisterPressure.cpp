//===- analysis/RegisterPressure.cpp - SSA liveness & pressure -------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "analysis/RegisterPressure.h"
#include "ir/Function.h"

#include <algorithm>

using namespace ompgpu;

/// True for values that occupy registers: instructions with results and
/// arguments. Constants and globals are immediates/addresses.
static bool isTrackedValue(const Value *V) {
  if (isa<Argument>(V))
    return true;
  const auto *I = dyn_cast<Instruction>(V);
  return I && !I->getType()->isVoidTy();
}

unsigned ompgpu::getValueRegisterUnits(const Value *V) {
  uint64_t Bytes = V->getType()->getSizeInBytes();
  return std::max<uint64_t>(1, (Bytes + 3) / 4);
}

Liveness::Liveness(const Function &F) {
  if (F.isDeclaration())
    return;

  // Appel's per-use up-and-mark algorithm: for every use, walk backwards
  // from the use block to the def block marking liveness.
  auto MarkLiveUpFrom = [&](const Value *V, const BasicBlock *DefBB,
                            const BasicBlock *UseBB) {
    std::vector<const BasicBlock *> Worklist{UseBB};
    while (!Worklist.empty()) {
      const BasicBlock *BB = Worklist.back();
      Worklist.pop_back();
      if (BB == DefBB)
        continue; // value defined here; not live-in
      if (!LiveInMap[BB].insert(V).second)
        continue; // already processed
      for (const BasicBlock *Pred :
           const_cast<BasicBlock *>(BB)->predecessors()) {
        LiveOutMap[Pred].insert(V);
        Worklist.push_back(Pred);
      }
    }
  };

  const BasicBlock *Entry = F.getEntryBlock();
  for (const BasicBlock *BB : F) {
    for (const Instruction *I : *BB) {
      if (const auto *Phi = dyn_cast<PhiInst>(I)) {
        // A phi's use is live-out of the incoming edge's predecessor.
        for (unsigned Idx = 0, E = Phi->getNumIncoming(); Idx != E; ++Idx) {
          const Value *In = Phi->getIncomingValue(Idx);
          if (!isTrackedValue(In))
            continue;
          const BasicBlock *DefBB =
              isa<Argument>(In) ? Entry
                                : cast<Instruction>(In)->getParent();
          const BasicBlock *PredBB = Phi->getIncomingBlock(Idx);
          LiveOutMap[PredBB].insert(In);
          MarkLiveUpFrom(In, DefBB, PredBB);
        }
        continue;
      }
      for (unsigned OpIdx = 0, E = I->getNumOperands(); OpIdx != E;
           ++OpIdx) {
        const Value *Op = I->getOperand(OpIdx);
        if (!isTrackedValue(Op))
          continue;
        const BasicBlock *DefBB =
            isa<Argument>(Op) ? Entry : cast<Instruction>(Op)->getParent();
        if (DefBB == BB)
          continue; // local use; handled by the linear scan
        MarkLiveUpFrom(Op, DefBB, BB);
      }
    }
  }
}

const std::set<const Value *> &Liveness::liveIn(const BasicBlock *BB) const {
  static const std::set<const Value *> Empty;
  auto It = LiveInMap.find(BB);
  return It == LiveInMap.end() ? Empty : It->second;
}

const std::set<const Value *> &
Liveness::liveOut(const BasicBlock *BB) const {
  static const std::set<const Value *> Empty;
  auto It = LiveOutMap.find(BB);
  return It == LiveOutMap.end() ? Empty : It->second;
}

unsigned ompgpu::computeMaxRegisterPressure(const Function &F) {
  if (F.isDeclaration())
    return 0;

  Liveness LV(F);
  unsigned MaxPressure = 0;

  // Arguments are live at entry at minimum.
  unsigned ArgUnits = 0;
  for (const Argument *A : F.args())
    ArgUnits += getValueRegisterUnits(A);
  MaxPressure = ArgUnits;

  for (const BasicBlock *BB : F) {
    // Walk backwards from the live-out set.
    std::set<const Value *> Live = LV.liveOut(BB);
    auto SumUnits = [&]() {
      unsigned Sum = 0;
      for (const Value *V : Live)
        Sum += getValueRegisterUnits(V);
      return Sum;
    };
    unsigned Cur = SumUnits();
    MaxPressure = std::max(MaxPressure, Cur);

    std::vector<Instruction *> Insts = BB->getInstructions();
    for (auto It = Insts.rbegin(), E = Insts.rend(); It != E; ++It) {
      const Instruction *I = *It;
      if (isTrackedValue(I))
        Live.erase(I);
      if (!isa<PhiInst>(I))
        for (unsigned OpIdx = 0, OE = I->getNumOperands(); OpIdx != OE;
             ++OpIdx)
          if (isTrackedValue(I->getOperand(OpIdx)))
            Live.insert(I->getOperand(OpIdx));
      Cur = SumUnits();
      MaxPressure = std::max(MaxPressure, Cur);
    }
  }
  return MaxPressure;
}
