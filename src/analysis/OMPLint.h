//===- analysis/OMPLint.h - Device-IR race & barrier lint -------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// OMPLint: an inter-procedural static verifier for device modules. It
/// checks the invariants the paper's transforms rely on but nothing else
/// in the compiler enforces:
///
///  - **Barrier divergence** (OMP200): a team barrier reachable under a
///    branch whose condition ThreadValueAnalysis classifies as divergent,
///    unless the barrier post-dominates the branch (all threads still
///    reach it) or the branch is part of a recognized runtime protocol
///    (kernel init dispatch, well-formed SPMDzation guards, the generic
///    worker state machine).
///  - **Shared-memory data races** (OMP201): writes to shared
///    address-space globals or main-thread `__kmpc_alloc_shared` results
///    by divergent threads, or main-thread writes observable by the team
///    without an intervening barrier.
///  - **Globalization pairing** (OMP202/OMP203): alloc/free API or size
///    mismatch, a free that is not reached on every feasible path, and
///    use-after-free / double-free of a shared allocation.
///  - **SPMD guard protocol** (OMP204): in SPMDzed kernels every guarded
///    region must follow Fig. 7 (barrier before the `tid == 0` branch,
///    join block that starts with a barrier and post-dominates the guard),
///    and no uniform side effect may sit outside a guard.
///  - **Data-mapping staleness** (OMP242/OMP243/OMP244): each kernel
///    parameter's declared-or-inferred map clause is checked against its
///    MemoryAccessSummary — a read of host data the mapping never copies
///    in, a write the mapping never copies back, or a declared transfer
///    direction the kernel provably never needs (docs/data-mapping.md).
///
/// The lint runs on the optimizer's *output* (post-openmp-opt pipeline
/// stage, fuzz oracle, bench/lint driver), so it is written to be
/// zero-false-positive on IR the front end and the passes legally produce;
/// anything it reports is a broken invariant worth a rollback.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_ANALYSIS_OMPLINT_H
#define OMPGPU_ANALYSIS_OMPLINT_H

#include <string>
#include <vector>

namespace ompgpu {

class Module;

/// Stable name of the pipeline's lint stage (pass instrumentation,
/// compile-report).
inline constexpr const char *OMPLintPassName = "omp-lint";

/// The checker categories.
enum class LintKind : uint8_t {
  BarrierDivergence,  ///< OMP200
  SharedRace,         ///< OMP201
  AllocFreePairing,   ///< OMP202
  UseAfterFree,       ///< OMP203
  GuardProtocol,      ///< OMP204
  StaleHostRead,      ///< OMP242
  StaleDeviceRead,    ///< OMP243
  RedundantRoundTrip, ///< OMP244
};

/// Returns the remark number (200..204, 242..244) for \p K.
unsigned lintRemarkNumber(LintKind K);

/// Returns the kind's stable identifier, e.g. "barrier-divergence"
/// (used in the compile-report lint section and the JSON lint report).
const char *lintKindName(LintKind K);

/// One verified-invariant violation. Everything is carried as strings so a
/// finding stays valid after the module is rolled back or mutated.
struct LintFinding {
  LintKind Kind;
  std::string FunctionName;
  /// Short description of the offending instruction, e.g.
  /// "store to 'broadcast' in block 'entry'".
  std::string Instruction;
  /// The shared object or allocation involved, if any.
  std::string Object;
  std::string Message;
  /// Block labels of one feasible path demonstrating the issue.
  std::vector<std::string> Witness;

  /// "OMP201 in 'kernel': <message>".
  std::string str() const;
};

/// Per-check enable switches.
struct LintOptions {
  bool CheckBarrierDivergence = true;
  bool CheckSharedRaces = true;
  bool CheckAllocFreePairing = true;
  bool CheckGuardProtocol = true;
  /// OMP242-244: kernel parameter mappings vs. their access summaries
  /// (docs/data-mapping.md). Kernels without declared or inferred
  /// mappings (the implicit tofrom default) never produce findings.
  bool CheckDataMapping = true;
};

/// A lint run over one module.
struct LintResult {
  std::vector<LintFinding> Findings;

  bool clean() const { return Findings.empty(); }
  /// One-line summary of all findings (empty when clean).
  std::string summary() const;
};

/// Runs all enabled checkers over the device module \p M. Runtime
/// functions (`__kmpc_*`, `omp_*`, `llvm.*`) are exempt: their bodies
/// implement the synchronization protocols the lint verifies users of.
LintResult runOMPLint(const Module &M, const LintOptions &Opts = {});

} // namespace ompgpu

#endif // OMPGPU_ANALYSIS_OMPLINT_H
