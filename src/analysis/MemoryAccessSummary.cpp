//===- analysis/MemoryAccessSummary.cpp - Per-pointer access class --------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "analysis/MemoryAccessSummary.h"

#include "analysis/CallGraph.h"
#include "analysis/Dominators.h"
#include "ir/Function.h"
#include "ir/Instruction.h"
#include "ir/Module.h"

#include <set>

using namespace ompgpu;

const char *ompgpu::pointerAccessClassName(PointerAccessClass C) {
  switch (C) {
  case PointerAccessClass::Dead:
    return "dead";
  case PointerAccessClass::ReadOnly:
    return "read-only";
  case PointerAccessClass::WriteFirst:
    return "write-first";
  case PointerAccessClass::ReadWrite:
    return "read-write";
  case PointerAccessClass::Unknown:
    return "unknown";
  }
  return "unknown";
}

PointerAccessClass PointerAccessSummary::classify() const {
  if (Unknown)
    return PointerAccessClass::Unknown;
  if (!MayRead && !MayWrite)
    return PointerAccessClass::Dead;
  if (!MayWrite)
    return PointerAccessClass::ReadOnly;
  if (!MayReadBeforeWrite)
    return PointerAccessClass::WriteFirst;
  return PointerAccessClass::ReadWrite;
}

namespace {

bool isRuntimeName(const std::string &N) {
  return N.rfind("__kmpc_", 0) == 0 || N.rfind("omp_", 0) == 0 ||
         N.rfind("llvm.", 0) == 0;
}

/// Runtime callees that only release the frame object itself and never
/// inspect its fields.
bool isFrameReleaseName(const std::string &N) {
  return N == "__kmpc_free_shared" || N == "__kmpc_data_sharing_pop_stack";
}

/// Calls whose result can serve as a captured-argument frame object.
bool isFrameAllocCall(const CallInst *CI) {
  const Function *Callee = CI->getCalledFunction();
  if (!Callee)
    return false;
  return Callee->getName() == "__kmpc_alloc_shared" ||
         Callee->getName() == "__kmpc_data_sharing_coalesced_push_stack";
}

/// If \p G is a frame-field address — constant indices {0, I} as emitted by
/// TargetRegionBuilder's capture protocol — returns I, else -1.
int gepFrameField(const GEPInst *G) {
  if (G->getNumIndices() != 2)
    return -1;
  const auto *I0 = dyn_cast<ConstantInt>(G->getIndex(0));
  const auto *I1 = dyn_cast<ConstantInt>(G->getIndex(1));
  if (!I0 || !I1 || !I0->isZero() || I1->getValue() < 0)
    return -1;
  return static_cast<int>(I1->getValue());
}

} // namespace

MemoryAccessSummaryAnalysis::~MemoryAccessSummaryAnalysis() = default;

const DominatorTree &MemoryAccessSummaryAnalysis::domTree(const Function *F) {
  std::unique_ptr<DominatorTree> &DT = DomTrees[F];
  if (!DT)
    DT.reset(new DominatorTree(*F));
  return *DT;
}

MemoryAccessSummaryAnalysis::MemoryAccessSummaryAnalysis(const Module &M) {
  // Seed every pointer-typed argument of every defined user function,
  // callees first (bottom-up SCC order), so most summaries are final on
  // the first sweep and only recursive SCCs need extra iterations.
  CallGraph CG(M);
  for (const std::vector<Function *> &SCC : CG.sccsBottomUp())
    for (const Function *F : SCC) {
      if (F->isDeclaration() || isRuntimeName(F->getName()))
        continue;
      for (unsigned I = 0; I < F->arg_size(); ++I)
        if (F->getArg(I)->getType()->isPointerTy())
          demand(Key(F, I, -1));
    }

  // Fixpoint: the lattice per key is four monotone may-bits, so repeated
  // sweeps converge. `Order` may grow mid-sweep as frame-field slots of
  // outlined wrappers are discovered.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Order.size(); ++I) {
      Key K = Order[I];
      PointerAccessSummary New = compute(K);
      PointerAccessSummary &Cur = Memo[K];
      if (New != Cur) {
        Cur = New;
        Changed = true;
      }
    }
  }
}

PointerAccessSummary
MemoryAccessSummaryAnalysis::argSummary(const Function *F,
                                        unsigned ArgIdx) const {
  auto It = Memo.find(Key(F, ArgIdx, -1));
  if (It != Memo.end())
    return It->second;
  PointerAccessSummary S;
  S.Unknown = true;
  return S;
}

PointerAccessSummary MemoryAccessSummaryAnalysis::demand(const Key &K) {
  auto It = Memo.find(K);
  if (It != Memo.end())
    return It->second;
  Order.push_back(K);
  return Memo[K]; // default-constructed optimistic bottom
}

PointerAccessSummary MemoryAccessSummaryAnalysis::compute(const Key &K) {
  const Function *F = std::get<0>(K);
  unsigned ArgNo = std::get<1>(K);
  int Field = std::get<2>(K);

  PointerAccessSummary S;
  auto Escape = [&S] { S.Unknown = true; };
  if (F->isDeclaration() || ArgNo >= F->arg_size()) {
    Escape();
    return S;
  }
  const Argument *Arg = F->getArg(ArgNo);

  // Roots of the derived-pointer walk.
  std::set<const Value *> Derived;
  if (Field < 0) {
    if (!Arg->getType()->isPointerTy()) {
      Escape();
      return S;
    }
    Derived.insert(Arg);
  } else {
    // Frame-field slot: the roots are loads of constant field `Field` of
    // the frame argument. Every use of the frame must be pattern-matched
    // (field address, whole-frame load after GEP folding) or the frame —
    // and with it the captured pointer — escapes the analysis.
    for (const User *U : Arg->users()) {
      if (const auto *G = dyn_cast<GEPInst>(U)) {
        if (G->getPointerOperand() != Arg || gepFrameField(G) < 0)
          return Escape(), S;
        if (gepFrameField(G) != Field)
          continue;
        for (const User *GU : G->users()) {
          const auto *L = dyn_cast<LoadInst>(GU);
          if (!L || L->getPointerOperand() != G)
            return Escape(), S;
          Derived.insert(L);
        }
        continue;
      }
      if (const auto *L = dyn_cast<LoadInst>(U)) {
        // A zero-offset field access folded to a plain load of the frame.
        if (L->getPointerOperand() != Arg)
          return Escape(), S;
        if (Field == 0)
          Derived.insert(L);
        continue;
      }
      return Escape(), S;
    }
  }

  // Passes 1+2, to a joint fixpoint.
  //
  // Pass 1 closes the derived set over GEP/addrspacecast/select/phi.
  //
  // Pass 2 handles captured-frame stores: a store *of* a derived pointer
  // is only analyzable when it follows the outlining protocol — the
  // target is a constant field of a local frame object that is itself
  // not derived. FrameStores maps each frame object to the fields
  // holding our pointer. A load back out of such a slot yields (an alias
  // of) the tracked pointer, so it re-enters the derived set: the
  // inlined distribute-parallel-for protocol stores each capture and
  // reloads it in the same function without any call in between, and the
  // reloads feed pass 1 again.
  std::map<const Value *, std::set<int>> FrameStores;
  bool Grew = true;
  while (Grew) {
    Grew = false;
    for (const BasicBlock *BB : *F)
      for (const Instruction *I : *BB) {
        if (Derived.count(I))
          continue;
        bool Add = false;
        if (const auto *G = dyn_cast<GEPInst>(I))
          Add = Derived.count(G->getPointerOperand());
        else if (const auto *C = dyn_cast<CastInst>(I))
          Add = C->getCastOp() == CastOp::AddrSpaceCast &&
                Derived.count(C->getSrc());
        else if (const auto *Sel = dyn_cast<SelectInst>(I))
          Add = Derived.count(Sel->getTrueValue()) ||
                Derived.count(Sel->getFalseValue());
        else if (const auto *Phi = dyn_cast<PhiInst>(I)) {
          for (unsigned J = 0; J < Phi->getNumIncoming() && !Add; ++J)
            Add = Derived.count(Phi->getIncomingValue(J));
        }
        if (Add) {
          Derived.insert(I);
          Grew = true;
        }
      }

    FrameStores.clear();
    for (const BasicBlock *BB : *F)
      for (const Instruction *I : *BB) {
        const auto *St = dyn_cast<StoreInst>(I);
        if (!St || !Derived.count(St->getValueOperand()))
          continue;
        const auto *G = dyn_cast<GEPInst>(St->getPointerOperand());
        int FieldIdx = G ? gepFrameField(G) : -1;
        const Value *FrameObj = G ? G->getPointerOperand() : nullptr;
        bool FrameOK = FrameObj && FieldIdx >= 0 &&
                       !Derived.count(FrameObj) &&
                       (isa<AllocaInst>(FrameObj) ||
                        (isa<CallInst>(FrameObj) &&
                         isFrameAllocCall(cast<CallInst>(FrameObj))));
        if (FrameOK)
          FrameStores[FrameObj].insert(FieldIdx);
        else
          Escape();
      }

    // Same-function reloads of frame slots that hold the tracked pointer.
    for (const auto &[FrameObj, Fields] : FrameStores)
      for (const User *U : FrameObj->users()) {
        const LoadInst *Reload = nullptr;
        if (const auto *G = dyn_cast<GEPInst>(U)) {
          int FI = gepFrameField(G);
          if (FI < 0 || !Fields.count(FI))
            continue;
          for (const User *GU : G->users())
            if (const auto *L = dyn_cast<LoadInst>(GU))
              if (L->getPointerOperand() == G && !Derived.count(L)) {
                Derived.insert(L);
                Grew = true;
              }
        } else if (const auto *L = dyn_cast<LoadInst>(U)) {
          // Zero-offset field access folded to a plain load of the frame.
          if (L->getPointerOperand() == FrameObj && Fields.count(0))
            Reload = L;
        }
        if (Reload && !Derived.count(Reload)) {
          Derived.insert(Reload);
          Grew = true;
        }
      }
  }

  // Covering writers for the read-before-write check: a load is covered iff
  // a store/atomic through the *same SSA address* dominates it (same SSA
  // value => same runtime address; dominance => executes first on every
  // path). Pointer-granularity coverage (any store to the base) would be
  // unsound for element-wise buffers.
  std::vector<const Instruction *> Writers;
  for (const BasicBlock *BB : *F)
    for (const Instruction *I : *BB) {
      if (const auto *St = dyn_cast<StoreInst>(I)) {
        if (Derived.count(St->getPointerOperand()))
          Writers.push_back(St);
      } else if (const auto *A = dyn_cast<AtomicRMWInst>(I)) {
        if (Derived.count(A->getPointerOperand()))
          Writers.push_back(A);
      }
    }
  auto WriterAddr = [](const Instruction *W) -> const Value * {
    if (const auto *St = dyn_cast<StoreInst>(W))
      return St->getPointerOperand();
    return cast<AtomicRMWInst>(W)->getPointerOperand();
  };
  auto Covered = [&](const Instruction *Read, const Value *Addr) {
    const DominatorTree &DT = domTree(F);
    for (const Instruction *W : Writers)
      if (W != Read && WriterAddr(W) == Addr && DT.dominates(W, Read))
        return true;
    return false;
  };

  // Merges a callee-side summary at a call site. Callee reads are never
  // covered by caller-side stores: the callee may touch different elements
  // of the buffer than any address the caller wrote.
  auto MergeCallee = [&S](const PointerAccessSummary &Sub) {
    S.MayRead |= Sub.MayRead;
    S.MayWrite |= Sub.MayWrite;
    S.MayReadBeforeWrite |= Sub.MayReadBeforeWrite;
    S.Unknown |= Sub.Unknown;
  };

  // Pass 3: access events and call propagation.
  for (const BasicBlock *BB : *F)
    for (const Instruction *I : *BB) {
      if (const auto *L = dyn_cast<LoadInst>(I)) {
        if (!Derived.count(L->getPointerOperand()))
          continue;
        S.MayRead = true;
        if (!Covered(L, L->getPointerOperand()))
          S.MayReadBeforeWrite = true;
      } else if (const auto *St = dyn_cast<StoreInst>(I)) {
        if (Derived.count(St->getPointerOperand()))
          S.MayWrite = true;
        // Stores of a derived value were handled in pass 2.
      } else if (const auto *A = dyn_cast<AtomicRMWInst>(I)) {
        if (Derived.count(A->getValOperand()))
          Escape();
        if (!Derived.count(A->getPointerOperand()))
          continue;
        S.MayRead = true;
        S.MayWrite = true;
        if (!Covered(A, A->getPointerOperand()))
          S.MayReadBeforeWrite = true;
      } else if (const auto *C = dyn_cast<CastInst>(I)) {
        if (C->getCastOp() != CastOp::AddrSpaceCast &&
            Derived.count(C->getSrc()))
          Escape(); // ptrtoint and friends defeat the walk
      } else if (const auto *G = dyn_cast<GEPInst>(I)) {
        for (unsigned J = 0; J < G->getNumIndices(); ++J)
          if (Derived.count(G->getIndex(J)))
            Escape();
      } else if (const auto *R = dyn_cast<RetInst>(I)) {
        if (R->getReturnValue() && Derived.count(R->getReturnValue()))
          Escape(); // flows back to an arbitrary caller
      } else if (const auto *CI = dyn_cast<CallInst>(I)) {
        const Function *Callee = CI->getCalledFunction();
        if (Derived.count(CI->getCalledOperand()))
          Escape(); // calling through the tracked pointer
        for (unsigned J = 0; J < CI->arg_size(); ++J) {
          const Value *A = CI->getArgOperand(J);
          bool IsFrame = FrameStores.count(A) != 0;
          if (Derived.count(A)) {
            // The tracked pointer itself is passed.
            if (!Callee) {
              Escape();
            } else if (Callee->isDeclaration()) {
              if (Callee->hasFnAttr(FnAttr::ReadNone))
                ; // no memory access
              else if (Callee->hasFnAttr(FnAttr::ReadOnly)) {
                S.MayRead = true;
                S.MayReadBeforeWrite = true;
              } else
                Escape();
            } else if (isRuntimeName(Callee->getName())) {
              Escape(); // defined runtime body; not modeled
            } else {
              MergeCallee(demand(Key(Callee, J, -1)));
            }
          } else if (IsFrame) {
            // A frame holding the tracked pointer is passed: continue the
            // walk inside the parallel wrapper's matching frame slots.
            if (Callee && Callee->getName() == "__kmpc_parallel_51" &&
                J == 1) {
              const auto *W = dyn_cast<Function>(CI->getArgOperand(0));
              if (W && !W->isDeclaration())
                for (int FS : FrameStores.find(A)->second)
                  MergeCallee(demand(Key(W, 0, FS)));
              else
                Escape();
            } else if (Callee && isFrameReleaseName(Callee->getName())) {
              ; // frees the frame without reading its fields
            } else if (Callee && !Callee->isDeclaration() &&
                       !isRuntimeName(Callee->getName())) {
              // Direct wrapper invocation (the nested-parallel fallback).
              for (int FS : FrameStores.find(A)->second)
                MergeCallee(demand(Key(Callee, J, FS)));
            } else {
              Escape();
            }
          }
        }
      }
    }

  return S;
}
