//===- analysis/PointerEscape.cpp - Inter-procedural escape check ----------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "analysis/PointerEscape.h"
#include "ir/Function.h"

#include <set>

using namespace ompgpu;

namespace {

/// Depth-bounded walker over the uses of a pointer and derived pointers.
class EscapeWalker {
  const EscapeConfig &Config;
  std::set<const Value *> Visited;
  EscapeResult Result;

public:
  explicit EscapeWalker(const EscapeConfig &Config) : Config(Config) {}

  EscapeResult run(const Value *Ptr) {
    followUses(Ptr, 0);
    return Result;
  }

private:
  void escape(const Instruction *Site, std::string Reason) {
    if (Result.Escapes)
      return;
    Result.Escapes = true;
    Result.EscapeSite = Site;
    Result.Reason = std::move(Reason);
  }

  void followUses(const Value *Ptr, unsigned Depth) {
    if (Result.Escapes || !Visited.insert(Ptr).second)
      return;
    if (Depth > Config.MaxDepth) {
      escape(nullptr, "analysis depth limit reached");
      return;
    }

    for (const User *U : Ptr->users()) {
      const auto *I = dyn_cast<Instruction>(U);
      if (!I) {
        escape(nullptr, "pointer used by a non-instruction");
        return;
      }
      visitUse(Ptr, I, Depth);
      if (Result.Escapes)
        return;
    }
  }

  void visitUse(const Value *Ptr, const Instruction *I, unsigned Depth) {
    switch (I->getOpcode()) {
    case ValueKind::Load:
    case ValueKind::ICmp:
      return; // reading through or comparing never exposes the pointer
    case ValueKind::Store: {
      const auto *SI = cast<StoreInst>(I);
      if (SI->getValueOperand() == Ptr)
        escape(I, "pointer is stored to memory");
      return; // storing *through* the pointer is fine
    }
    case ValueKind::AtomicRMW: {
      const auto *AI = cast<AtomicRMWInst>(I);
      if (AI->getValOperand() == Ptr)
        escape(I, "pointer is exchanged atomically");
      return;
    }
    case ValueKind::GEP:
    case ValueKind::Select:
    case ValueKind::Phi:
      // Derived pointer: follow its uses too.
      followUses(I, Depth);
      return;
    case ValueKind::Cast: {
      const auto *C = cast<CastInst>(I);
      if (C->getCastOp() == CastOp::PtrToInt) {
        escape(I, "pointer is converted to an integer");
        return;
      }
      followUses(I, Depth);
      return;
    }
    case ValueKind::Ret:
      escape(I, "pointer is returned to the caller");
      return;
    case ValueKind::Call: {
      const auto *CI = cast<CallInst>(I);
      if (CI->getCalledOperand() == Ptr) {
        escape(I, "pointer is used as a call target");
        return;
      }
      for (unsigned A = 0, E = CI->arg_size(); A != E; ++A) {
        if (CI->getArgOperand(A) != Ptr)
          continue;
        visitCallArg(*CI, A, Depth);
        if (Result.Escapes)
          return;
      }
      return;
    }
    default:
      escape(I, std::string("pointer used by unhandled instruction '") +
                    I->getOpcodeName() + "'");
      return;
    }
  }

  void visitCallArg(const CallInst &CI, unsigned ArgIdx, unsigned Depth) {
    ArgCaptureKind Kind = ArgCaptureKind::Captures;
    if (Config.ClassifyCallArg)
      Kind = Config.ClassifyCallArg(CI, ArgIdx);
    else if (const Function *Callee = CI.getCalledFunction())
      Kind = Callee->isDeclaration() ? ArgCaptureKind::Captures
                                     : ArgCaptureKind::InspectCallee;

    switch (Kind) {
    case ArgCaptureKind::NoCapture:
      return;
    case ArgCaptureKind::Captures:
      escape(&CI, "pointer passed to '" +
                      (CI.getCalledFunction()
                           ? CI.getCalledFunction()->getName()
                           : std::string("<indirect>")) +
                      "' which may share it with other threads");
      return;
    case ArgCaptureKind::InspectCallee: {
      const Function *Callee = CI.getCalledFunction();
      if (!Callee || Callee->isDeclaration()) {
        escape(&CI, "pointer passed to an unknown callee");
        return;
      }
      const Argument *FormalArg = Callee->getArg(ArgIdx);
      if (FormalArg->hasNoEscapeAttr())
        return; // user-provided domain knowledge (Sec. IV-D)
      followUses(FormalArg, Depth + 1);
      return;
    }
    }
  }
};

} // namespace

EscapeResult ompgpu::analyzePointerEscape(const Value *Ptr,
                                          const EscapeConfig &Config) {
  return EscapeWalker(Config).run(Ptr);
}
