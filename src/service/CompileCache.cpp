//===- service/CompileCache.cpp - IR-hash-keyed compile cache --------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "service/CompileCache.h"

#include "driver/CompileReport.h"
#include "profile/Profile.h"
#include "resilience/FaultInjector.h"
#include "support/FileSystem.h"
#include "support/Hashing.h"

#include <algorithm>
#include <filesystem>

using namespace ompgpu;

json::Value CompileCacheStats::toJSON() const {
  json::Value V = json::Value::makeObject();
  V.set("hits", Hits)
      .set("misses", Misses)
      .set("stores", Stores)
      .set("evictions", Evictions)
      .set("corrupt_entries", CorruptEntries)
      .set("disk_errors", DiskErrors)
      .set("disk_bypassed_ops", DiskBypassedOps)
      .set("disk_reenables", DiskReenables);
  return V;
}

CompileCache::CompileCache() : CompileCache(Options()) {}

CompileCache::CompileCache(Options O) : Opts(std::move(O)) {}

/// Folds one string field into the fingerprint, length-prefixed so
/// adjacent fields cannot alias ("ab"+"c" vs "a"+"bc").
static uint64_t mixString(uint64_t H, const std::string &S) {
  H = hashCombine(H, S.size());
  return hashCombine(H, hashBytes(S));
}

uint64_t CompileCache::pipelineFingerprint(const PipelineOptions &P,
                                           bool *Cacheable) {
  if (Cacheable)
    *Cacheable = P.ExtraPasses.empty();

  uint64_t H = hashBytes("ompgpu-pipeline-fingerprint");
  // The name is part of the key on purpose: it appears verbatim in the
  // cached report payload, so two configs differing only by name must not
  // share an entry (documented invalidation rule: renaming a preset cold-
  // starts its cache).
  H = mixString(H, P.Name);
  H = hashCombine(H, (uint64_t)P.Scheme);
  H = hashCombine(H, (uint64_t)P.Flavor);
  H = hashCombine(H, P.RunOpenMPOpt);
  H = hashCombine(H, P.RunCleanups);
  H = hashCombine(H, P.RunLint);
  H = hashCombine(H, (uint64_t)P.Profile);
  // The target architecture is key material: the simulator, the warp-size
  // folds, and the occupancy math all depend on it, so a warm cache shared
  // across -march values would silently serve one architecture's results
  // for another. archFingerprint covers the name, the machine geometry,
  // and the full cost table.
  H = hashCombine(H, archFingerprint(P.Arch));

  const OpenMPOptConfig &C = P.OptConfig;
  H = hashCombine(H, C.DisableDeglobalization);
  H = hashCombine(H, C.DisableHeapToShared);
  H = hashCombine(H, C.DisableSPMDization);
  H = hashCombine(H, C.DisableStateMachineRewrite);
  H = hashCombine(H, C.DisableFolding);
  H = hashCombine(H, C.DisableInternalization);
  H = hashCombine(H, C.DisableGuardGrouping);
  H = hashCombine(H, C.WarpSize);
  H = hashCombine(H, C.SharedMemoryLimit);
  // An attached execution profile steers openmp-opt (OMP210-212), so the
  // fingerprint covers its *content*, not its address: a -profile-use
  // compile only hits the cache when fed a byte-identical profile.
  H = hashCombine(H, C.Profile != nullptr);
  if (C.Profile)
    H = mixString(H, serializeProfile(*C.Profile));

  const PassInstrumentationOptions &I = P.Instrument;
  H = hashCombine(H, I.TimePasses);
  H = hashCombine(H, I.TrackChanges);
  H = hashCombine(H, I.VerifyEach);
  H = hashCombine(H, I.LintEach);
  H = hashCombine(H, I.Recover);
  H = hashCombine(H, (uint64_t)I.OptBisectLimit);

  const LintOptions &L = P.Lint;
  H = hashCombine(H, L.CheckBarrierDivergence);
  H = hashCombine(H, L.CheckSharedRaces);
  H = hashCombine(H, L.CheckAllocFreePairing);
  H = hashCombine(H, L.CheckGuardProtocol);
  return H;
}

static std::string hex16(uint64_t V) {
  static const char Digits[] = "0123456789abcdef";
  std::string S(16, '0');
  for (int I = 15; I >= 0; --I, V >>= 4)
    S[(size_t)I] = Digits[V & 0xf];
  return S;
}

std::string CompileCache::cacheKey(uint64_t InputIRHash, uint64_t PipelineFP,
                                   uint64_t Salt) {
  // Both schema versions are key material, so bumping either invalidates
  // every existing entry (stale entries age out via eviction).
  uint64_t Config = hashCombine(PipelineFP, Salt);
  Config = hashCombine(Config, CompileReportSchemaVersion);
  Config = hashCombine(Config, CompileCacheSchemaVersion);
  return hex16(InputIRHash) + "-" + hex16(Config);
}

std::string CompileCache::entryPath(const std::string &Key) const {
  return Opts.Dir + "/" + Key + ".json";
}

void CompileCache::noteDiskError(CompileCacheIO *IO) {
  ++Counters.DiskErrors;
  DiskBypassLeft = DiskBypassWindow;
  if (IO)
    IO->DiskError = true;
}

bool CompileCache::consumeBypass(CompileCacheIO *IO) {
  if (DiskBypassLeft == 0)
    return false;
  ++Counters.DiskBypassedOps;
  if (--DiskBypassLeft == 0)
    ++Counters.DiskReenables;
  if (IO)
    IO->DiskBypassed = true;
  return true;
}

std::optional<json::Value> CompileCache::lookup(const std::string &Key,
                                                CompileCacheIO *IO) {
  if (!Opts.Enabled)
    return std::nullopt;
  std::lock_guard<std::mutex> Lock(Mu);

  auto It = Memory.find(Key);
  if (It != Memory.end()) {
    ++Counters.Hits;
    return It->second;
  }

  if (!Opts.Dir.empty() && !consumeBypass(IO) && fileExists(entryPath(Key))) {
    // Disk tier. A content defect — bad JSON, wrong entry schema, key
    // mismatch, missing payload — deletes the entry and degrades to a
    // miss; a corrupt cache must never abort a compile. A read *error*
    // leaves the (possibly fine) file alone and opens the bypass window
    // instead: the disk is flaky, not the entry.
    auto Corrupt = [&]() -> std::optional<json::Value> {
      ++Counters.CorruptEntries;
      ++Counters.Misses;
      if (IO)
        IO->CorruptEntry = true;
      (void)removeFile(entryPath(Key));
      return std::nullopt;
    };
    Expected<std::string> Text = readTextFile(entryPath(Key));
    if (!Text) {
      noteDiskError(IO);
      ++Counters.Misses;
      return std::nullopt;
    }
    if (FaultInjector::instance().shouldFire(faultsite::CacheCorrupt))
      return Corrupt();
    json::Value Entry;
    if (!json::parse(*Text, Entry) || !Entry.isObject())
      return Corrupt();
    const json::Value *Schema = Entry.find("cache_schema");
    const json::Value *StoredKey = Entry.find("key");
    const json::Value *Payload = Entry.find("payload");
    if (!Schema || (uint64_t)Schema->asInt() != CompileCacheSchemaVersion ||
        !StoredKey || StoredKey->asString() != Key || !Payload)
      return Corrupt();
    ++Counters.Hits;
    Memory.emplace(Key, *Payload);
    MemoryInsertionOrder.push_back(Key);
    evictMemoryOverCap();
    return *Payload;
  }

  ++Counters.Misses;
  return std::nullopt;
}

void CompileCache::store(const std::string &Key, const json::Value &Payload,
                         CompileCacheIO *IO) {
  if (!Opts.Enabled)
    return;
  std::lock_guard<std::mutex> Lock(Mu);
  if (Memory.find(Key) == Memory.end()) {
    Memory.emplace(Key, Payload);
    MemoryInsertionOrder.push_back(Key);
    evictMemoryOverCap();
  }
  ++Counters.Stores;

  if (Opts.Dir.empty() || consumeBypass(IO))
    return;
  if (ensureDirectory(Opts.Dir)) { // Failure: stay in-memory only.
    noteDiskError(IO);
    return;
  }
  json::Value Entry = json::Value::makeObject();
  Entry.set("cache_schema", CompileCacheSchemaVersion)
      .set("report_schema", CompileReportSchemaVersion)
      .set("key", Key)
      .set("payload", Payload);
  // Atomic (temp + rename): concurrent writers of the same key race
  // benignly (same content), and an interrupted run leaves no torn file.
  if (writeTextFile(entryPath(Key), Entry.str() + "\n")) {
    noteDiskError(IO);
    return;
  }
  evictDiskOverCap();
}

unsigned CompileCache::diskBypassRemaining() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return DiskBypassLeft;
}

void CompileCache::evictMemoryOverCap() {
  size_t Scan = 0;
  while (Memory.size() > Opts.MaxEntries &&
         Scan < MemoryInsertionOrder.size()) {
    const std::string &Oldest = MemoryInsertionOrder[Scan++];
    if (Memory.erase(Oldest))
      ++Counters.Evictions;
  }
  MemoryInsertionOrder.erase(MemoryInsertionOrder.begin(),
                             MemoryInsertionOrder.begin() + (long)Scan);
}

void CompileCache::evictDiskOverCap() {
  std::vector<std::string> Names = listDirectoryFiles(Opts.Dir);
  if (Names.size() <= Opts.MaxEntries)
    return;
  // Oldest first by mtime (name as deterministic tie-break).
  std::vector<std::pair<std::filesystem::file_time_type, std::string>> Aged;
  for (const std::string &Name : Names) {
    std::error_code EC;
    auto T = std::filesystem::last_write_time(Opts.Dir + "/" + Name, EC);
    if (!EC)
      Aged.emplace_back(T, Name);
  }
  std::sort(Aged.begin(), Aged.end());
  for (size_t I = 0; I + Opts.MaxEntries < Aged.size(); ++I) {
    if (!removeFile(Opts.Dir + "/" + Aged[I].second))
      ++Counters.Evictions;
  }
}

CompileCacheStats CompileCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counters;
}
