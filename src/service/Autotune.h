//===- service/Autotune.h - Arch-aware preset autotuner ---------*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The preset autotuner (docs/architectures.md): walks a deterministic
/// preset x architecture x SharedMemoryLimit grid over the Fig. 11 proxy
/// workloads, compiling every candidate through the compile service
/// (batched across workers, memoized in the compile cache — the arch is
/// part of the cache key) and scoring it by full-grid simulated cycles
/// with outputs checked. The best-known configuration per workload x
/// architecture is persisted to a schema-versioned tuned.json; each
/// selection emits an OMP230 remark and each win over the default preset
/// an OMP231. The whole search is a pure function of its options: no
/// timestamps, no randomness, ties broken towards the earlier candidate —
/// two runs with the same options produce byte-identical artifacts at any
/// worker count.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SERVICE_AUTOTUNE_H
#define OMPGPU_SERVICE_AUTOTUNE_H

#include "gpusim/ArchSpec.h"
#include "service/CompileService.h"
#include "workloads/Workload.h"

#include <string>
#include <vector>

namespace ompgpu {

/// Version of the tuned.json schema. Bump on any field rename/removal;
/// additions are backwards compatible.
inline constexpr unsigned TunedSchemaVersion = 1;

/// Grid and execution options of one autotuning run.
struct AutotuneOptions {
  /// Architectures to tune for. Empty = every registry architecture.
  std::vector<ArchSpec> Archs;
  /// Workloads to tune, by name. Empty = the four Fig. 11 proxies
  /// (XSBench, RSBench, SU3Bench, miniQMC).
  std::vector<std::string> Workloads;
  /// Candidate pipelines. Index 0 is the *default preset* every tuned
  /// configuration is scored against (and is itself always a candidate,
  /// so the tuned score can never regress below it while the default
  /// compiles correctly). Empty = {LLVM Dev 0, h2s2 + RTCspec + CSM}.
  std::vector<PipelineOptions> Presets;
  /// Candidate HeapToShared budgets in bytes; the value 0 stands for the
  /// architecture's default (its per-block shared-memory capacity).
  /// Empty = {0, 4096, 256}. The first entry is the default preset's
  /// budget.
  std::vector<uint64_t> SharedLimits;
  /// Problem size the candidates are simulated at.
  ProblemSize Size = ProblemSize::Small;
  /// Recorded in tuned.json for provenance and folded into the compile
  /// salt, so distinct seeds occupy distinct cache entries.
  uint64_t Seed = 1;
  /// Worker pool and compile cache of the underlying service.
  CompileService::Options Service;
};

/// Best-known configuration of one workload on one architecture.
struct AutotuneEntry {
  std::string Workload;
  std::string Arch;
  /// Winning candidate.
  std::string Preset;
  uint64_t SharedMemoryLimit = 0; ///< Resolved bytes (never the 0 alias).
  uint64_t Cycles = 0;
  /// The baseline it beat (or matched): preset 0 at the default budget.
  std::string DefaultPreset;
  uint64_t DefaultSharedMemoryLimit = 0;
  uint64_t DefaultCycles = 0;
  bool DefaultCorrect = false;
  /// Strictly fewer cycles than the default (or the default failed).
  bool Improved = false;
  unsigned CandidatesTried = 0;
  unsigned CandidatesFailed = 0;
};

/// Outcome of one autotuning run.
struct AutotuneResult {
  /// One entry per workload x architecture that produced at least one
  /// correct candidate, sorted by (workload, arch).
  std::vector<AutotuneEntry> Entries;
  /// OMP230 per selection, OMP231 per win over the default preset.
  RemarkCollector Remarks;
  /// Workload x architecture cells with no correct candidate at all.
  unsigned Failures = 0;
  /// Aggregates of the candidate batch (cache hits prove warm reruns).
  BatchStats Batch;
  /// The seed and architecture names the run was configured with
  /// (serialized for provenance).
  uint64_t Seed = 0;
  std::vector<std::string> ArchNames;

  /// The tuned.json document: deterministic member order, no timestamps.
  json::Value toJSON() const;
};

/// Runs the grid search. Candidate order — workload-major, then arch,
/// then preset, then budget — is the tie-break order: the earliest
/// candidate with the minimal cycle count wins, so results are
/// reproducible bit for bit across runs and worker counts.
AutotuneResult runAutotune(const AutotuneOptions &O);

/// Writes \p R.toJSON() to \p Path atomically (trailing newline).
Error writeTunedFile(const std::string &Path, const AutotuneResult &R);

} // namespace ompgpu

#endif // OMPGPU_SERVICE_AUTOTUNE_H
