//===- service/Autotune.cpp - Arch-aware preset autotuner ------------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "service/Autotune.h"
#include "driver/Presets.h"
#include "ir/Module.h"
#include "support/FileSystem.h"
#include "support/Hashing.h"
#include "workloads/Harness.h"

#include <algorithm>
#include <memory>

using namespace ompgpu;

namespace {

struct NamedFactory {
  const char *Name;
  std::unique_ptr<Workload> (*Create)(ProblemSize);
};

const NamedFactory Fig11Factories[] = {{"XSBench", createXSBench},
                                       {"RSBench", createRSBench},
                                       {"SU3Bench", createSU3Bench},
                                       {"miniQMC", createMiniQMC}};

const NamedFactory *findFactory(const std::string &Name) {
  for (const NamedFactory &F : Fig11Factories)
    if (Name == F.Name)
      return &F;
  return nullptr;
}

/// One grid point, in tie-break order.
struct Candidate {
  std::string Workload;
  std::string Arch;
  PipelineOptions Pipeline; ///< arch applied, budget resolved
  uint64_t SharedLimit = 0; ///< resolved bytes
  bool IsDefault = false;   ///< preset 0 at the default budget
};

/// Scratch shared between one candidate's Emit and Evaluate callbacks
/// (both run on the same service worker, in order) — the bench/pgo
/// request pattern.
struct CandidateState {
  std::unique_ptr<Workload> W;
};

CompileRequest makeCandidateRequest(const Candidate &C,
                                    const NamedFactory &Factory,
                                    ProblemSize Size, uint64_t Seed) {
  auto St = std::make_shared<CandidateState>();
  const PipelineOptions P = C.Pipeline;
  CompileRequest Q;
  Q.Id = C.Workload + "/" + C.Arch + "/" + P.Name + "/smem-" +
         std::to_string(C.SharedLimit);
  Q.Pipeline = P;
  // The pipeline fingerprint already covers the arch and the budget; the
  // salt covers what it cannot see: the problem size the evaluation
  // simulates at, and the run's seed (distinct seeds must not share
  // cached evaluations, or reruns could not be compared).
  Q.Salt = hashCombine(hashCombine(hashBytes("ompgpu-autotune"), Seed),
                       (uint64_t)Size);
  Q.Emit = [St, &Factory, Size, P](Module &M) {
    St->W = Factory.Create(Size);
    Function *K = emitWorkloadModule(*St->W, M, P);
    return K ? std::string(K->getName()) : std::string();
  };
  Q.Evaluate = [St, P](Module &M, const CompileResult &CR,
                       const std::string &Kernel) {
    json::Value V = json::Value::makeObject();
    if (CR.VerifyFailed) {
      V.set("ok", false)
          .set("trap", "IR verification failed: " + CR.VerifyError)
          .set("cycles", (uint64_t)0);
      return V;
    }
    Function *K = M.getFunction(Kernel);
    if (!K) {
      V.set("ok", false)
          .set("trap", "kernel '" + Kernel + "' lost during optimization")
          .set("cycles", (uint64_t)0);
      return V;
    }
    HarnessOptions HO;
    HO.MaxSimulatedBlocks = 0; // whole grid: outputs are checked
    LaunchCheckResult L = launchAndCheckWorkload(*St->W, M, K, P, HO);
    bool OK = L.Stats.ok() && L.Checked && L.Correct;
    V.set("ok", OK)
        .set("checked", L.Checked)
        .set("correct", L.Correct)
        .set("cycles", L.Stats.Cycles)
        .set("trap", L.Stats.ok()
                         ? std::string(L.Stats.Trap)
                         : (L.Stats.Trap.empty() ? "out of memory"
                                                 : L.Stats.Trap));
    return V;
  };
  return Q;
}

/// One candidate's digested outcome.
struct Score {
  bool OK = false;
  uint64_t Cycles = 0;
};

Score scoreOutcome(const CompileOutcome &O) {
  Score S;
  if (!O.Error.empty())
    return S;
  const json::Value &E = O.evaluation();
  if (!E.isObject() || !E.find("ok"))
    return S;
  S.OK = E.at("ok").asBool();
  if (const json::Value *C = E.find("cycles"))
    S.Cycles = (uint64_t)C->asInt();
  return S;
}

} // namespace

AutotuneResult ompgpu::runAutotune(const AutotuneOptions &O) {
  AutotuneResult R;
  R.Seed = O.Seed;

  // Resolve the grid's defaults.
  std::vector<ArchSpec> Archs = O.Archs;
  if (Archs.empty())
    for (const std::string &Name : archRegistryNames())
      Archs.push_back(*lookupArch(Name));
  for (const ArchSpec &A : Archs)
    R.ArchNames.push_back(A.Name);

  std::vector<std::string> Workloads = O.Workloads;
  if (Workloads.empty())
    for (const NamedFactory &F : Fig11Factories)
      Workloads.push_back(F.Name);

  std::vector<PipelineOptions> Presets = O.Presets;
  if (Presets.empty()) {
    Presets.push_back(makeDevPipeline()); // the default preset (LLVM Dev 0)
    Presets.push_back(makeDevPipeline(true, true, true, true,
                                      /*SPMDzation=*/false));
  }

  std::vector<uint64_t> Limits = O.SharedLimits;
  if (Limits.empty())
    Limits = {0, 4096, 256};

  // Lay out the grid workload-major in tie-break order and batch every
  // candidate through one compile service.
  std::vector<Candidate> Grid;
  std::vector<CompileRequest> Requests;
  for (const std::string &WName : Workloads) {
    const NamedFactory *Factory = findFactory(WName);
    if (!Factory) {
      R.Remarks.emit(RemarkId::OMP230, /*Missed=*/true, WName,
                     "autotune: unknown workload '" + WName + "'");
      ++R.Failures;
      continue;
    }
    for (const ArchSpec &Arch : Archs) {
      for (size_t PI = 0; PI < Presets.size(); ++PI) {
        for (size_t LI = 0; LI < Limits.size(); ++LI) {
          Candidate C;
          C.Workload = WName;
          C.Arch = Arch.Name;
          C.Pipeline = Presets[PI];
          applyArch(C.Pipeline, Arch);
          if (Limits[LI] != 0)
            C.Pipeline.OptConfig.SharedMemoryLimit = Limits[LI];
          C.SharedLimit = C.Pipeline.OptConfig.SharedMemoryLimit;
          C.IsDefault = PI == 0 && LI == 0;
          Requests.push_back(
              makeCandidateRequest(C, *Factory, O.Size, O.Seed));
          Grid.push_back(std::move(C));
        }
      }
    }
  }

  CompileService Svc(O.Service);
  std::vector<CompileOutcome> Out = Svc.compileBatch(Requests);
  R.Batch = Svc.lastBatchStats();

  // Reduce each workload x arch cell: minimum cycles among correct
  // candidates, earliest candidate on ties.
  size_t CellSize = Presets.size() * Limits.size();
  for (size_t Base = 0; Base + CellSize <= Grid.size(); Base += CellSize) {
    const Candidate &First = Grid[Base];
    AutotuneEntry E;
    E.Workload = First.Workload;
    E.Arch = First.Arch;
    E.CandidatesTried = (unsigned)CellSize;

    const Candidate *Best = nullptr;
    Score BestScore;
    for (size_t I = Base; I < Base + CellSize; ++I) {
      Score S = scoreOutcome(Out[I]);
      const Candidate &C = Grid[I];
      if (C.IsDefault) {
        E.DefaultPreset = C.Pipeline.Name;
        E.DefaultSharedMemoryLimit = C.SharedLimit;
        E.DefaultCycles = S.Cycles;
        E.DefaultCorrect = S.OK;
      }
      if (!S.OK) {
        ++E.CandidatesFailed;
        continue;
      }
      if (!Best || S.Cycles < BestScore.Cycles) {
        Best = &C;
        BestScore = S;
      }
    }
    if (!Best) {
      R.Remarks.emit(RemarkId::OMP230, /*Missed=*/true, E.Workload,
                     "autotune: no correct candidate for " + E.Workload +
                         " on " + E.Arch);
      ++R.Failures;
      continue;
    }

    E.Preset = Best->Pipeline.Name;
    E.SharedMemoryLimit = Best->SharedLimit;
    E.Cycles = BestScore.Cycles;
    E.Improved =
        !E.DefaultCorrect || (E.DefaultCycles > 0 && E.Cycles < E.DefaultCycles);
    R.Remarks.emit(RemarkId::OMP230, /*Missed=*/false, E.Workload,
                   "autotune: selected '" + E.Preset + "' with a " +
                       std::to_string(E.SharedMemoryLimit) +
                       "-byte shared-memory budget on " + E.Arch + " (" +
                       std::to_string(E.Cycles) + " cycles)");
    if (E.Improved)
      R.Remarks.emit(
          RemarkId::OMP231, /*Missed=*/false, E.Workload,
          "autotune: tuned configuration beats the default preset '" +
              E.DefaultPreset + "' on " + E.Arch +
              (E.DefaultCorrect
                   ? " (" + std::to_string(E.DefaultCycles) + " -> " +
                         std::to_string(E.Cycles) + " cycles)"
                   : " (default preset failed)"));
    R.Entries.push_back(std::move(E));
  }

  std::sort(R.Entries.begin(), R.Entries.end(),
            [](const AutotuneEntry &A, const AutotuneEntry &B) {
              if (A.Workload != B.Workload)
                return A.Workload < B.Workload;
              return A.Arch < B.Arch;
            });
  return R;
}

json::Value AutotuneResult::toJSON() const {
  json::Value Doc = json::Value::makeObject();
  Doc.set("schema_version", TunedSchemaVersion)
      .set("generator", "ompgpu")
      .set("tool", "autotune")
      .set("seed", Seed);
  json::Value ArchArr = json::Value::makeArray();
  for (const std::string &Name : ArchNames)
    ArchArr.push_back(json::Value(Name));
  Doc.set("archs", std::move(ArchArr));
  json::Value Arr = json::Value::makeArray();
  for (const AutotuneEntry &E : Entries) {
    json::Value V = json::Value::makeObject();
    V.set("workload", E.Workload)
        .set("arch", E.Arch)
        .set("preset", E.Preset)
        .set("shared_memory_limit", E.SharedMemoryLimit)
        .set("sim_cycles", E.Cycles)
        .set("default_preset", E.DefaultPreset)
        .set("default_shared_memory_limit", E.DefaultSharedMemoryLimit)
        .set("default_sim_cycles", E.DefaultCycles)
        .set("default_correct", E.DefaultCorrect)
        .set("improved", E.Improved)
        .set("candidates_tried", E.CandidatesTried)
        .set("candidates_failed", E.CandidatesFailed);
    Arr.push_back(std::move(V));
  }
  Doc.set("entries", std::move(Arr));
  Doc.set("failures", Failures);
  return Doc;
}

Error ompgpu::writeTunedFile(const std::string &Path,
                             const AutotuneResult &R) {
  return writeTextFile(Path, R.toJSON().str() + "\n");
}
