//===- service/CompileService.cpp - Batched kernel compilation -------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include "driver/CompileReport.h"
#include "ir/AsmWriter.h"
#include "ir/IRContext.h"
#include "ir/Module.h"
#include "resilience/FaultInjector.h"
#include "support/PassTimer.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

using namespace ompgpu;

json::Value BatchStats::toJSON() const {
  json::Value V = json::Value::makeObject();
  V.set("jobs", Jobs)
      .set("workers", Workers)
      .set("cache_hits", CacheHits)
      .set("cache_misses", CacheMisses)
      .set("cache_evictions", CacheEvictions)
      .set("cache_corrupt_entries", CacheCorruptEntries)
      .set("cache_disk_errors", CacheDiskErrors)
      .set("cache_disk_bypassed_ops", CacheDiskBypassedOps)
      .set("failed", Failed)
      .set("retries", Retries)
      .set("degraded", Degraded)
      .set("quarantined", Quarantined)
      .set("faults_injected", FaultsInjected)
      .set("wall_ms", WallMillis)
      .set("job_ms", JobMillis);
  return V;
}

std::string CompileOutcome::resultKey() const {
  // `report` is deliberately excluded: its pass wall times differ between
  // runs, and on a cache hit it describes the storing compile.
  return summary().str() + "\n" + evaluation().str();
}

CompileService::CompileService() : CompileService(Options()) {}

CompileService::CompileService(Options O)
    : Opts(O), Cache(std::move(O.Cache)) {}

unsigned CompileService::workersFor(size_t Jobs) const {
  unsigned W = Opts.Workers;
  if (W == 0) {
    W = std::thread::hardware_concurrency();
    if (W == 0)
      W = 1;
  }
  if ((size_t)W > Jobs)
    W = (unsigned)(Jobs ? Jobs : 1);
  return W ? W : 1;
}

/// The timing-free projection of one compile, used for determinism
/// comparison (CompileOutcome::resultKey) and stable across cache
/// hits. Everything here is a pure function of the input module and the
/// pipeline options.
static json::Value buildSummary(const CompileRequest &R,
                                const std::string &Entry,
                                uint64_t InputIRHash,
                                uint64_t OptimizedIRHash,
                                const json::Value &Report) {
  json::Value S = json::Value::makeObject();
  S.set("id", R.Id)
      .set("entry_kernel", Entry)
      .set("pipeline", R.Pipeline.Name)
      .set("input_ir_hash", InputIRHash)
      .set("optimized_ir_hash", OptimizedIRHash)
      // These report sections carry no wall-clock fields; share them
      // instead of re-serializing the underlying structs.
      .set("verify", Report.at("verify"))
      .set("lint", Report.at("lint"))
      .set("profile", Report.at("profile"))
      .set("openmp_opt_stats", Report.at("openmp_opt_stats"))
      .set("remarks", Report.at("remarks"))
      .set("statistics", Report.at("statistics"))
      .set("quarantined_passes", Report.at("recovery").at("quarantined_passes"));
  return S;
}

/// The pipeline one degradation rung actually runs (OMP221). Reduced
/// reuses the pass-quarantine recovery mechanism: a misbehaving pass is
/// skipped instead of failing the compile. Reference drops openmp-opt and
/// the cleanup pipeline entirely — the always-safe baseline the paper's
/// comparisons are made against.
static PipelineOptions pipelineForRung(const PipelineOptions &P,
                                       DegradationRung D) {
  PipelineOptions Q = P;
  switch (D) {
  case DegradationRung::Requested:
    break;
  case DegradationRung::Reduced:
    Q.Instrument.Recover = true;
    break;
  case DegradationRung::Reference:
    Q.RunOpenMPOpt = false;
    Q.RunCleanups = false;
    break;
  }
  return Q;
}

/// Builds the minimal well-formed payload of a failed or short-circuited
/// request.
static json::Value failurePayload(const CompileRequest &R,
                                  const std::string &Error) {
  json::Value Summary = json::Value::makeObject();
  Summary.set("id", R.Id).set("pipeline", R.Pipeline.Name).set("error", Error);
  json::Value Payload = json::Value::makeObject();
  Payload.set("summary", std::move(Summary))
      .set("evaluation", json::Value())
      .set("report", json::Value());
  return Payload;
}

CompileOutcome CompileService::runAttempt(const CompileRequest &R,
                                          const PipelineOptions &Pipeline,
                                          bool AllowCache,
                                          CompileCacheIO &IO) {
  PassTimer Timer;
  Timer.start();

  CompileOutcome O;
  O.Id = R.Id;

  bool FingerprintCacheable = true;
  uint64_t FP =
      CompileCache::pipelineFingerprint(Pipeline, &FingerprintCacheable);

  FaultInjector &Chaos = FaultInjector::instance();
  try {
    // Worker-private context and module: type interning is additionally
    // mutex-guarded, but nothing here is shared between jobs to begin
    // with.
    IRContext Ctx;
    Module M(Ctx, R.Id.empty() ? "service-job" : R.Id);
    if (Chaos.shouldFire(faultsite::ServiceEmit))
      throw std::runtime_error("injected fault: service.emit worker exception");
    std::string Entry = R.Emit ? R.Emit(M) : std::string();

    O.InputIRHash = hashModule(M);
    O.CacheKey = CompileCache::cacheKey(O.InputIRHash, FP, R.Salt);
    // Degraded rungs (AllowCache false) bypass the cache entirely: their
    // results must not mask the requested pipeline's entry, and a
    // degraded result is never cached.
    O.Cacheable = FingerprintCacheable && Cache.enabled() && AllowCache;

    if (O.Cacheable) {
      if (std::optional<json::Value> Hit = Cache.lookup(O.CacheKey, &IO)) {
        O.CacheHit = true;
        O.Payload = std::move(*Hit);
        Timer.stop();
        O.WallMillis = Timer.millis();
        return O;
      }
    }

    if (Chaos.shouldFire(faultsite::ServiceCompile))
      throw std::runtime_error(
          "injected fault: service.compile fatal pipeline error");
    CompileResult CR = optimizeDeviceModule(M, Pipeline);

    json::Value Evaluation; // null when the request has no Evaluate.
    if (R.Evaluate) {
      if (Chaos.shouldFire(faultsite::ServiceEvaluate))
        throw std::runtime_error(
            "injected fault: service.evaluate worker exception");
      Evaluation = R.Evaluate(M, CR, Entry);
    }

    json::Value CacheInfo = json::Value::makeObject();
    CacheInfo.set("managed", true)
        .set("cacheable", O.Cacheable)
        .set("hit", false)
        .set("key", O.CacheKey);
    json::Value Report =
        buildCompileReport(Pipeline, CR, /*Kernels=*/{}, &CacheInfo);

    json::Value Summary =
        buildSummary(R, Entry, O.InputIRHash, hashModule(M), Report);

    O.Payload = json::Value::makeObject();
    O.Payload.set("summary", std::move(Summary))
        .set("evaluation", std::move(Evaluation))
        .set("report", std::move(Report));
  } catch (const std::exception &E) {
    O.Error = E.what();
  } catch (...) {
    O.Error = "unknown exception";
  }

  if (!O.Error.empty()) {
    // A failed attempt yields a minimal, well-formed payload; it is never
    // cached (the failure may be environmental or injected).
    O.Cacheable = false;
    O.Payload = failurePayload(R, O.Error);
  }

  Timer.stop();
  O.WallMillis = Timer.millis();
  return O;
}

bool CompileService::isQuarantined(const std::string &Id) const {
  std::lock_guard<std::mutex> Lock(QuarantineMu);
  return Quarantined.count(Id) != 0;
}

void CompileService::quarantine(const std::string &Id) {
  std::lock_guard<std::mutex> Lock(QuarantineMu);
  Quarantined.insert(Id);
}

/// Attaches this run's resilience section to the outcome payload: as a
/// top-level `resilience` member and as the report's `resilience` section
/// (replacing the inert default buildCompileReport emits, so cached
/// entries stay run-independent).
static void attachResilience(CompileOutcome &O) {
  json::Value RJ = O.Resilience.toJSON();
  if (!O.Payload.isObject())
    return;
  if (const json::Value *Report = O.Payload.find("report");
      Report && Report->isObject()) {
    json::Value Patched = *Report;
    Patched.set("resilience", RJ);
    O.Payload.set("report", std::move(Patched));
  }
  O.Payload.set("resilience", std::move(RJ));
}

CompileOutcome CompileService::runOne(const CompileRequest &R) {
  PassTimer Total;
  Total.start();
  const ResiliencePolicy &Pol = Opts.Resilience;
  FaultInjector &Chaos = FaultInjector::instance();

  CompileOutcome O;
  O.Id = R.Id;
  // Accumulated outside O: every runAttempt() below reassigns O whole,
  // which would wipe remarks and events gathered on earlier attempts.
  ResilienceSummary RS;

  // Poison short-circuit: a request id that already exhausted its budget
  // is not worth burning attempts on again (OMP223).
  if (Pol.QuarantinePoison && isQuarantined(R.Id)) {
    O.Error = "resilience: request quarantined after exhausting its attempt "
              "budget (OMP223)";
    O.Payload = failurePayload(R, O.Error);
    RS.Quarantined = true;
    RS.Attempts = 0;
    RS.addRemark("OMP223");
    RS.Actions.push_back("short-circuit: id is quarantined");
    O.Resilience = std::move(RS);
    attachResilience(O);
    Total.stop();
    O.WallMillis = Total.millis();
    return O;
  }

  struct RungPlan {
    DegradationRung D;
    unsigned Tries;
  };
  std::vector<RungPlan> Ladder;
  Ladder.push_back({DegradationRung::Requested,
                    Pol.MaxAttempts > 0 ? Pol.MaxAttempts : 1});
  if (Pol.DegradePresets) {
    Ladder.push_back({DegradationRung::Reduced, 1});
    Ladder.push_back({DegradationRung::Reference, 1});
  }

  unsigned Attempt = 0;
  bool Accepted = false;
  for (const RungPlan &Rung : Ladder) {
    PipelineOptions Pipe = pipelineForRung(R.Pipeline, Rung.D);
    if (Rung.D != DegradationRung::Requested)
      RS.Actions.push_back(std::string("degrade: retrying on the '") +
                           degradationRungName(Rung.D) + "' rung (OMP221)");
    for (unsigned T = 0; T < Rung.Tries && !Accepted; ++T) {
      ++Attempt;
      if (Attempt > 1) {
        // Deterministic capped backoff — same attempt number, same delay,
        // regardless of worker count or scheduling.
        unsigned Ms = Pol.backoffMillis(Attempt - 1);
        if (Ms)
          std::this_thread::sleep_for(std::chrono::milliseconds(Ms));
      }

      bool AllowCache = Rung.D == DegradationRung::Requested;
      CompileCacheIO IO;
      {
        FaultScope Scope(R.Id, Attempt);
        O = runAttempt(R, Pipe, AllowCache, IO);
      }
      std::vector<FaultEvent> Fired = Chaos.takeEventsForScope(R.Id);
      bool FaultsThisAttempt = !Fired.empty();
      for (FaultEvent &E : Fired)
        RS.InjectedFaults.push_back(std::move(E));
      if (IO.DiskError) {
        RS.addRemark("OMP222");
        RS.Actions.push_back(
            "cache: disk error observed, bypassing the disk tier (OMP222)");
      } else if (IO.DiskBypassed) {
        RS.addRemark("OMP222");
        RS.Actions.push_back("cache: disk tier bypassed (OMP222)");
      }

      bool Failed = !O.Error.empty();
      bool Transient = false;
      if (!Failed && !O.CacheHit && R.IsTransient) {
        try {
          Transient = R.IsTransient(O.Payload.at("evaluation"));
        } catch (...) {
          Transient = false;
        }
      }
      if (Transient) {
        RS.addRemark("OMP220");
        RS.Actions.push_back("watchdog: evaluation reported a recoverable "
                             "timeout (OMP220)");
      }

      bool LastOverall = &Rung == &Ladder.back() && T + 1 == Rung.Tries;
      if (!Failed && (!Transient || LastOverall)) {
        // Accept. A still-transient final attempt is returned as-is (its
        // payload is well-formed and records the timeout) but is treated
        // as poison below.
        Accepted = !Transient;
        if (Rung.D != DegradationRung::Requested) {
          RS.DegradedTo = Rung.D;
          RS.addRemark("OMP221");
        }
        // Store only clean requested-rung compiles: no error, no
        // transient timeout, and no fault fired during the attempt — a
        // faulted attempt must never poison the cache.
        if (O.Cacheable && !O.CacheHit && AllowCache && !Transient &&
            !FaultsThisAttempt) {
          CompileCacheIO StoreIO;
          {
            FaultScope StoreScope(R.Id, Attempt);
            Cache.store(O.CacheKey, O.Payload, &StoreIO);
          }
          std::vector<FaultEvent> StoreFired = Chaos.takeEventsForScope(R.Id);
          for (FaultEvent &E : StoreFired)
            RS.InjectedFaults.push_back(std::move(E));
          if (StoreIO.DiskError) {
            RS.addRemark("OMP222");
            RS.Actions.push_back("cache: store hit a disk error, bypassing "
                                 "the disk tier (OMP222)");
          } else if (StoreIO.DiskBypassed) {
            RS.addRemark("OMP222");
            RS.Actions.push_back("cache: store bypassed the disk tier "
                                 "(OMP222)");
          }
        }
        if (!Transient)
          break;
      }
      if (!Accepted && !LastOverall)
        RS.Actions.push_back(std::string("retry: attempt ") +
                             std::to_string(Attempt) + " " +
                             (Failed ? "failed" : "timed out") +
                             ", backing off");
      if (LastOverall)
        break;
    }
    if (Accepted)
      break;
  }

  RS.Attempts = Attempt;
  RS.Retries = Attempt > 0 ? Attempt - 1 : 0;

  if (!Accepted && Pol.QuarantinePoison) {
    quarantine(R.Id);
    RS.Quarantined = true;
    RS.addRemark("OMP223");
    RS.Actions.push_back("quarantine: attempt budget exhausted (OMP223)");
  }

  O.Resilience = std::move(RS);
  attachResilience(O);
  Total.stop();
  O.WallMillis = Total.millis();
  return O;
}

std::vector<CompileOutcome>
CompileService::compileBatch(const std::vector<CompileRequest> &Requests) {
  PassTimer Batch;
  Batch.start();
  CompileCacheStats Before = Cache.stats();

  std::vector<CompileOutcome> Out(Requests.size());
  std::atomic<size_t> Next{0};
  auto Work = [&] {
    for (size_t I; (I = Next.fetch_add(1, std::memory_order_relaxed)) <
                   Requests.size();)
      Out[I] = runOne(Requests[I]);
  };

  unsigned W = workersFor(Requests.size());
  if (W <= 1 || Requests.size() <= 1) {
    Work();
    W = 1;
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(W);
    for (unsigned I = 0; I < W; ++I)
      Threads.emplace_back(Work);
    for (std::thread &T : Threads)
      T.join();
  }

  Batch.stop();
  CompileCacheStats After = Cache.stats();

  Last = BatchStats();
  Last.Jobs = (unsigned)Requests.size();
  Last.Workers = W;
  Last.CacheHits = After.Hits - Before.Hits;
  Last.CacheMisses = After.Misses - Before.Misses;
  Last.CacheEvictions = After.Evictions - Before.Evictions;
  Last.CacheCorruptEntries = After.CorruptEntries - Before.CorruptEntries;
  Last.CacheDiskErrors = After.DiskErrors - Before.DiskErrors;
  Last.CacheDiskBypassedOps = After.DiskBypassedOps - Before.DiskBypassedOps;
  Last.WallMillis = Batch.millis();
  for (const CompileOutcome &O : Out) {
    Last.JobMillis += O.WallMillis;
    if (!O.Error.empty())
      ++Last.Failed;
    Last.Retries += O.Resilience.Retries;
    if (O.Resilience.DegradedTo != DegradationRung::Requested)
      ++Last.Degraded;
    if (O.Resilience.Quarantined)
      ++Last.Quarantined;
    Last.FaultsInjected += (unsigned)O.Resilience.InjectedFaults.size();
  }
  return Out;
}
