//===- service/CompileService.cpp - Batched kernel compilation -------------===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include "driver/CompileReport.h"
#include "ir/AsmWriter.h"
#include "ir/IRContext.h"
#include "ir/Module.h"
#include "support/PassTimer.h"

#include <atomic>
#include <exception>
#include <thread>

using namespace ompgpu;

json::Value BatchStats::toJSON() const {
  json::Value V = json::Value::makeObject();
  V.set("jobs", Jobs)
      .set("workers", Workers)
      .set("cache_hits", CacheHits)
      .set("cache_misses", CacheMisses)
      .set("cache_evictions", CacheEvictions)
      .set("cache_corrupt_entries", CacheCorruptEntries)
      .set("failed", Failed)
      .set("wall_ms", WallMillis)
      .set("job_ms", JobMillis);
  return V;
}

std::string CompileOutcome::resultKey() const {
  // `report` is deliberately excluded: its pass wall times differ between
  // runs, and on a cache hit it describes the storing compile.
  return summary().str() + "\n" + evaluation().str();
}

CompileService::CompileService() : CompileService(Options()) {}

CompileService::CompileService(Options O)
    : Opts(O), Cache(std::move(O.Cache)) {}

unsigned CompileService::workersFor(size_t Jobs) const {
  unsigned W = Opts.Workers;
  if (W == 0) {
    W = std::thread::hardware_concurrency();
    if (W == 0)
      W = 1;
  }
  if ((size_t)W > Jobs)
    W = (unsigned)(Jobs ? Jobs : 1);
  return W ? W : 1;
}

/// The timing-free projection of one compile, used for determinism
/// comparison (CompileOutcome::resultKey) and stable across cache
/// hits. Everything here is a pure function of the input module and the
/// pipeline options.
static json::Value buildSummary(const CompileRequest &R,
                                const std::string &Entry,
                                uint64_t InputIRHash,
                                uint64_t OptimizedIRHash,
                                const json::Value &Report) {
  json::Value S = json::Value::makeObject();
  S.set("id", R.Id)
      .set("entry_kernel", Entry)
      .set("pipeline", R.Pipeline.Name)
      .set("input_ir_hash", InputIRHash)
      .set("optimized_ir_hash", OptimizedIRHash)
      // These report sections carry no wall-clock fields; share them
      // instead of re-serializing the underlying structs.
      .set("verify", Report.at("verify"))
      .set("lint", Report.at("lint"))
      .set("profile", Report.at("profile"))
      .set("openmp_opt_stats", Report.at("openmp_opt_stats"))
      .set("remarks", Report.at("remarks"))
      .set("statistics", Report.at("statistics"))
      .set("quarantined_passes", Report.at("recovery").at("quarantined_passes"));
  return S;
}

CompileOutcome CompileService::runOne(const CompileRequest &R) {
  PassTimer Timer;
  Timer.start();

  CompileOutcome O;
  O.Id = R.Id;

  bool FingerprintCacheable = true;
  uint64_t FP =
      CompileCache::pipelineFingerprint(R.Pipeline, &FingerprintCacheable);

  try {
    // Worker-private context and module: type interning is additionally
    // mutex-guarded, but nothing here is shared between jobs to begin
    // with.
    IRContext Ctx;
    Module M(Ctx, R.Id.empty() ? "service-job" : R.Id);
    std::string Entry = R.Emit ? R.Emit(M) : std::string();

    O.InputIRHash = hashModule(M);
    O.CacheKey = CompileCache::cacheKey(O.InputIRHash, FP, R.Salt);
    O.Cacheable = FingerprintCacheable && Cache.enabled();

    if (O.Cacheable) {
      if (std::optional<json::Value> Hit = Cache.lookup(O.CacheKey)) {
        O.CacheHit = true;
        O.Payload = std::move(*Hit);
        Timer.stop();
        O.WallMillis = Timer.millis();
        return O;
      }
    }

    CompileResult CR = optimizeDeviceModule(M, R.Pipeline);

    json::Value Evaluation; // null when the request has no Evaluate.
    if (R.Evaluate)
      Evaluation = R.Evaluate(M, CR, Entry);

    json::Value CacheInfo = json::Value::makeObject();
    CacheInfo.set("managed", true)
        .set("cacheable", O.Cacheable)
        .set("hit", false)
        .set("key", O.CacheKey);
    json::Value Report =
        buildCompileReport(R.Pipeline, CR, /*Kernels=*/{}, &CacheInfo);

    json::Value Summary =
        buildSummary(R, Entry, O.InputIRHash, hashModule(M), Report);

    O.Payload = json::Value::makeObject();
    O.Payload.set("summary", std::move(Summary))
        .set("evaluation", std::move(Evaluation))
        .set("report", std::move(Report));

    if (O.Cacheable)
      Cache.store(O.CacheKey, O.Payload);
  } catch (const std::exception &E) {
    O.Error = E.what();
  } catch (...) {
    O.Error = "unknown exception";
  }

  if (!O.Error.empty()) {
    // A failed job yields a minimal, well-formed payload; it is never
    // cached (the failure may be environmental).
    O.Cacheable = false;
    json::Value Summary = json::Value::makeObject();
    Summary.set("id", R.Id)
        .set("pipeline", R.Pipeline.Name)
        .set("error", O.Error);
    O.Payload = json::Value::makeObject();
    O.Payload.set("summary", std::move(Summary))
        .set("evaluation", json::Value())
        .set("report", json::Value());
  }

  Timer.stop();
  O.WallMillis = Timer.millis();
  return O;
}

std::vector<CompileOutcome>
CompileService::compileBatch(const std::vector<CompileRequest> &Requests) {
  PassTimer Batch;
  Batch.start();
  CompileCacheStats Before = Cache.stats();

  std::vector<CompileOutcome> Out(Requests.size());
  std::atomic<size_t> Next{0};
  auto Work = [&] {
    for (size_t I; (I = Next.fetch_add(1, std::memory_order_relaxed)) <
                   Requests.size();)
      Out[I] = runOne(Requests[I]);
  };

  unsigned W = workersFor(Requests.size());
  if (W <= 1 || Requests.size() <= 1) {
    Work();
    W = 1;
  } else {
    std::vector<std::thread> Threads;
    Threads.reserve(W);
    for (unsigned I = 0; I < W; ++I)
      Threads.emplace_back(Work);
    for (std::thread &T : Threads)
      T.join();
  }

  Batch.stop();
  CompileCacheStats After = Cache.stats();

  Last = BatchStats();
  Last.Jobs = (unsigned)Requests.size();
  Last.Workers = W;
  Last.CacheHits = After.Hits - Before.Hits;
  Last.CacheMisses = After.Misses - Before.Misses;
  Last.CacheEvictions = After.Evictions - Before.Evictions;
  Last.CacheCorruptEntries = After.CorruptEntries - Before.CorruptEntries;
  Last.WallMillis = Batch.millis();
  for (const CompileOutcome &O : Out) {
    Last.JobMillis += O.WallMillis;
    if (!O.Error.empty())
      ++Last.Failed;
  }
  return Out;
}
