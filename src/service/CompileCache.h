//===- service/CompileCache.h - IR-hash-keyed compile cache -----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoization of device compilations for the compile service
/// (docs/compile-service.md). A cache key is derived from the input IR hash
/// (ir/AsmWriter.h hashModule), a semantic fingerprint of the
/// PipelineOptions, a caller-supplied salt, and the report/cache schema
/// versions; the value is the opaque JSON payload the service produced for
/// that compile (summary, evaluation, report). Entries live in memory and,
/// when a directory is configured, as one JSON file per key on disk
/// (written atomically via support/FileSystem, so an interrupted run never
/// leaves a truncated entry). A corrupt entry is deleted and counted, then
/// treated as a miss — the service recompiles, it never aborts.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SERVICE_COMPILECACHE_H
#define OMPGPU_SERVICE_COMPILECACHE_H

#include "driver/Pipeline.h"
#include "support/JSON.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ompgpu {

/// Version of the on-disk cache-entry schema. Part of every cache key, so
/// bumping it (or CompileReportSchemaVersion) invalidates all prior
/// entries without needing a cache wipe.
inline constexpr unsigned CompileCacheSchemaVersion = 1;

/// Monotonic counters of one cache instance. Snapshot via
/// CompileCache::stats(); the service reports per-batch deltas.
struct CompileCacheStats {
  uint64_t Hits = 0;           ///< lookup() returned a payload.
  uint64_t Misses = 0;         ///< lookup() found nothing usable.
  uint64_t Stores = 0;         ///< store() accepted a new payload.
  uint64_t Evictions = 0;      ///< Entries dropped to respect MaxEntries.
  uint64_t CorruptEntries = 0; ///< Unreadable disk entries deleted.

  json::Value toJSON() const;
};

/// Thread-safe memoization table for compile payloads.
class CompileCache {
public:
  struct Options {
    /// Master switch; a disabled cache misses every lookup and drops
    /// every store, so callers need no special-casing.
    bool Enabled = true;
    /// On-disk cache directory ("" = in-memory only). Created on first
    /// store. Layout: one `<key>.json` per entry, see
    /// docs/compile-service.md.
    std::string Dir;
    /// Entry cap, enforced independently for the memory tier and the
    /// disk tier. Oldest entries (insertion order in memory, mtime on
    /// disk) are evicted first.
    size_t MaxEntries = 4096;
  };

  CompileCache();
  explicit CompileCache(Options O);

  bool enabled() const { return Opts.Enabled; }
  const Options &options() const { return Opts; }

  /// Hashes every compilation-relevant field of \p P — preset name,
  /// scheme, runtime flavor, pass toggles, the full OpenMPOptConfig
  /// (including the *content* of an attached execution profile),
  /// instrumentation and lint switches. Sets \p *Cacheable to false when
  /// \p P carries ExtraPasses: those are opaque callbacks whose behaviour
  /// cannot be fingerprinted, so such compiles must never be served from
  /// or stored to the cache.
  static uint64_t pipelineFingerprint(const PipelineOptions &P,
                                      bool *Cacheable = nullptr);

  /// Derives the cache key string: IR hash x pipeline fingerprint x salt
  /// x CompileReportSchemaVersion x CompileCacheSchemaVersion, rendered
  /// as two 16-digit hex words. \p Salt lets callers fold non-IR inputs
  /// (e.g. a launch configuration an Evaluate callback depends on) into
  /// the key.
  static std::string cacheKey(uint64_t InputIRHash, uint64_t PipelineFP,
                              uint64_t Salt = 0);

  /// Returns the payload stored under \p Key, consulting memory first and
  /// then disk (a disk hit is promoted into memory). Counts a hit or a
  /// miss; a corrupt disk entry is deleted, counted, and reported as a
  /// miss.
  std::optional<json::Value> lookup(const std::string &Key);

  /// Stores \p Payload under \p Key in memory and (when configured) on
  /// disk, evicting oldest entries beyond MaxEntries. Failures to write
  /// the disk tier are swallowed: the cache is an accelerator, never a
  /// correctness dependency.
  void store(const std::string &Key, const json::Value &Payload);

  CompileCacheStats stats() const;

private:
  std::string entryPath(const std::string &Key) const;
  void evictMemoryOverCap(); // Caller holds Mu.
  void evictDiskOverCap();   // Caller holds Mu.

  Options Opts;
  mutable std::mutex Mu;
  std::map<std::string, json::Value> Memory;
  std::vector<std::string> MemoryInsertionOrder;
  CompileCacheStats Counters;
};

} // namespace ompgpu

#endif // OMPGPU_SERVICE_COMPILECACHE_H
