//===- service/CompileCache.h - IR-hash-keyed compile cache -----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memoization of device compilations for the compile service
/// (docs/compile-service.md). A cache key is derived from the input IR hash
/// (ir/AsmWriter.h hashModule), a semantic fingerprint of the
/// PipelineOptions, a caller-supplied salt, and the report/cache schema
/// versions; the value is the opaque JSON payload the service produced for
/// that compile (summary, evaluation, report). Entries live in memory and,
/// when a directory is configured, as one JSON file per key on disk
/// (written atomically via support/FileSystem, so an interrupted run never
/// leaves a truncated entry). A corrupt entry is deleted and counted, then
/// treated as a miss — the service recompiles, it never aborts.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SERVICE_COMPILECACHE_H
#define OMPGPU_SERVICE_COMPILECACHE_H

#include "driver/Pipeline.h"
#include "support/JSON.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ompgpu {

/// Version of the on-disk cache-entry schema. Part of every cache key, so
/// bumping it (or CompileReportSchemaVersion) invalidates all prior
/// entries without needing a cache wipe.
inline constexpr unsigned CompileCacheSchemaVersion = 1;

/// Monotonic counters of one cache instance. Snapshot via
/// CompileCache::stats(); the service reports per-batch deltas.
struct CompileCacheStats {
  uint64_t Hits = 0;           ///< lookup() returned a payload.
  uint64_t Misses = 0;         ///< lookup() found nothing usable.
  uint64_t Stores = 0;         ///< store() accepted a new payload.
  uint64_t Evictions = 0;      ///< Entries dropped to respect MaxEntries.
  uint64_t CorruptEntries = 0; ///< Unreadable disk entries deleted.
  uint64_t DiskErrors = 0;     ///< Disk read/write failures observed.
  uint64_t DiskBypassedOps = 0; ///< Disk ops skipped while bypassed (OMP222).
  uint64_t DiskReenables = 0;  ///< Bypass windows that expired.

  json::Value toJSON() const;
};

/// Per-call feedback from lookup()/store(), so the service can attribute
/// cache-layer resilience events (OMP222) to the request that hit them.
struct CompileCacheIO {
  bool DiskError = false;    ///< This call observed a disk read/write error.
  bool DiskBypassed = false; ///< The disk tier was skipped (bypass window).
  bool CorruptEntry = false; ///< This call deleted a corrupt entry.
};

/// Thread-safe memoization table for compile payloads.
class CompileCache {
public:
  struct Options {
    /// Master switch; a disabled cache misses every lookup and drops
    /// every store, so callers need no special-casing.
    bool Enabled = true;
    /// On-disk cache directory ("" = in-memory only). Created on first
    /// store. Layout: one `<key>.json` per entry, see
    /// docs/compile-service.md.
    std::string Dir;
    /// Entry cap, enforced independently for the memory tier and the
    /// disk tier. Oldest entries (insertion order in memory, mtime on
    /// disk) are evicted first.
    size_t MaxEntries = 4096;
  };

  CompileCache();
  explicit CompileCache(Options O);

  bool enabled() const { return Opts.Enabled; }
  const Options &options() const { return Opts; }

  /// Hashes every compilation-relevant field of \p P — preset name,
  /// scheme, runtime flavor, pass toggles, the full OpenMPOptConfig
  /// (including the *content* of an attached execution profile),
  /// instrumentation and lint switches. Sets \p *Cacheable to false when
  /// \p P carries ExtraPasses: those are opaque callbacks whose behaviour
  /// cannot be fingerprinted, so such compiles must never be served from
  /// or stored to the cache.
  static uint64_t pipelineFingerprint(const PipelineOptions &P,
                                      bool *Cacheable = nullptr);

  /// Derives the cache key string: IR hash x pipeline fingerprint x salt
  /// x CompileReportSchemaVersion x CompileCacheSchemaVersion, rendered
  /// as two 16-digit hex words. \p Salt lets callers fold non-IR inputs
  /// (e.g. a launch configuration an Evaluate callback depends on) into
  /// the key.
  static std::string cacheKey(uint64_t InputIRHash, uint64_t PipelineFP,
                              uint64_t Salt = 0);

  /// Returns the payload stored under \p Key, consulting memory first and
  /// then disk (a disk hit is promoted into memory). Counts a hit or a
  /// miss; a corrupt disk entry is deleted, counted, and reported as a
  /// miss, while a disk *I/O* error (flaky or full disk) leaves the file
  /// alone, counts a DiskError, and opens the bypass window. \p IO, when
  /// non-null, reports what this call observed.
  std::optional<json::Value> lookup(const std::string &Key,
                                    CompileCacheIO *IO = nullptr);

  /// Stores \p Payload under \p Key in memory and (when configured) on
  /// disk, evicting oldest entries beyond MaxEntries. A disk-tier write
  /// failure never fails the compile — the cache is an accelerator, not a
  /// correctness dependency — but it is counted, reported via \p IO, and
  /// opens the bypass window (OMP222).
  void store(const std::string &Key, const json::Value &Payload,
             CompileCacheIO *IO = nullptr);

  CompileCacheStats stats() const;

  /// Disk ops remaining in the current bypass window (0 = disk tier
  /// active). After a disk error the next DiskBypassWindow disk-tier
  /// operations are skipped outright, then the tier re-enables
  /// automatically — one flaky disk never turns every compile into a
  /// blocking I/O retry storm.
  unsigned diskBypassRemaining() const;
  static constexpr unsigned DiskBypassWindow = 32;

private:
  std::string entryPath(const std::string &Key) const;
  void evictMemoryOverCap(); // Caller holds Mu.
  void evictDiskOverCap();   // Caller holds Mu.
  /// Notes a disk error and opens the bypass window. Caller holds Mu.
  void noteDiskError(CompileCacheIO *IO);
  /// True when the disk tier should be skipped for this op (and decrements
  /// the window, re-enabling at zero). Caller holds Mu.
  bool consumeBypass(CompileCacheIO *IO);

  Options Opts;
  mutable std::mutex Mu;
  std::map<std::string, json::Value> Memory;
  std::vector<std::string> MemoryInsertionOrder;
  CompileCacheStats Counters;
  unsigned DiskBypassLeft = 0;
};

} // namespace ompgpu

#endif // OMPGPU_SERVICE_COMPILECACHE_H
