//===- service/CompileService.h - Batched kernel compilation ----*- C++ -*-===//
//
// Part of the ompgpu project, reproducing "Efficient Execution of OpenMP on
// GPUs" (CGO 2022). Distributed under the Apache-2.0 license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile service (docs/compile-service.md): accepts a batch of
/// kernel-compile requests, shards it across a worker thread pool, and
/// memoizes each result in the IR-hash-keyed CompileCache. Each request
/// carries an Emit callback that builds the pre-optimization module inside
/// a worker-private IRContext (type interning and the remark/statistic
/// sinks are thread-safe / per-compile, see the thread-safety contract in
/// the doc) and an optional Evaluate callback whose JSON result is cached
/// alongside the compile — which is how fuzz verdicts and simulated PGO
/// runs skip both the compile *and* the simulation on a warm cache.
/// Results are returned in request order and are bit-identical to a
/// sequential run of the same batch.
///
//===----------------------------------------------------------------------===//

#ifndef OMPGPU_SERVICE_COMPILESERVICE_H
#define OMPGPU_SERVICE_COMPILESERVICE_H

#include "resilience/Resilience.h"
#include "service/CompileCache.h"

#include <functional>
#include <set>

namespace ompgpu {

class Module;

/// One kernel-compile job submitted to the service.
struct CompileRequest {
  /// Caller-chosen identifier, echoed in the outcome and the payload
  /// summary (e.g. "seed-42/LLVM Dev" or "rodinia-srad/arm-A").
  std::string Id;
  /// The pipeline to run. ExtraPasses make the request uncacheable (their
  /// behaviour cannot be fingerprinted); everything else, including an
  /// attached execution profile's content, is folded into the cache key.
  PipelineOptions Pipeline;
  /// Builds the pre-optimization module into the worker-provided \p M and
  /// returns the entry kernel's name ("" when not applicable). Must be
  /// deterministic: the module it emits is hashed to form the cache key.
  std::function<std::string(Module &M)> Emit;
  /// Optional post-compile evaluation, run on the worker against the
  /// optimized module (e.g. simulate the kernel, judge a fuzz oracle).
  /// Its JSON result is cached with the compile and must therefore be a
  /// pure function of the optimized module and the request.
  std::function<json::Value(Module &M, const CompileResult &CR,
                            const std::string &EntryKernel)>
      Evaluate;
  /// Extra cache-key material for Evaluate inputs that are not visible in
  /// the IR (launch geometry, oracle configuration, ...). Requests whose
  /// evaluations differ must differ in salt, or they will share an entry.
  uint64_t Salt = 0;
  /// Optional transient classifier: given a successful attempt's
  /// Evaluate result, returns true when the outcome is recoverable-by-
  /// retry (e.g. a watchdog cycle-budget timeout, OMP220) rather than a
  /// verdict. Transient attempts are retried under the service's
  /// ResiliencePolicy and are never cached.
  std::function<bool(const json::Value &Evaluation)> IsTransient;
};

/// Result of one request. `Payload` is identical whether the job was
/// compiled or served from cache — except `report`, whose wall-clock
/// fields (and `cache` section) describe the compile that originally
/// produced the entry. Determinism comparisons therefore use resultKey(),
/// which covers `summary` and `evaluation` only.
struct CompileOutcome {
  std::string Id;
  /// False when the request cannot be cached (ExtraPasses) or the
  /// service's cache is disabled.
  bool Cacheable = false;
  bool CacheHit = false;
  std::string CacheKey;
  uint64_t InputIRHash = 0;
  /// Worker-side wall time of this job (emit + lookup + compile +
  /// evaluate + store).
  double WallMillis = 0.0;
  /// "" on success; the exception message when the job failed. A failed
  /// job still yields a structured outcome (summary.error), never tears
  /// down the batch.
  std::string Error;
  /// {"summary": ..., "evaluation": ..., "report": ..., "resilience": ...}.
  /// The `resilience` member (and `report.resilience`) always describe
  /// *this run's* handling, even on a cache hit — cached entries store the
  /// inert default section.
  json::Value Payload;
  /// What the resilience policy did for this request: attempts, retries,
  /// degradation rung, quarantine, injected faults (docs/resilience.md).
  ResilienceSummary Resilience;

  const json::Value &summary() const { return Payload.at("summary"); }
  const json::Value &evaluation() const { return Payload.at("evaluation"); }
  const json::Value &report() const { return Payload.at("report"); }
  /// Deterministic serialization of everything timing-free — equal across
  /// sequential/batched/cached runs of the same request.
  std::string resultKey() const;
};

/// Aggregates of one compileBatch call.
struct BatchStats {
  unsigned Jobs = 0;
  unsigned Workers = 0;
  uint64_t CacheHits = 0;
  uint64_t CacheMisses = 0;
  uint64_t CacheEvictions = 0;
  uint64_t CacheCorruptEntries = 0;
  uint64_t CacheDiskErrors = 0;
  uint64_t CacheDiskBypassedOps = 0;
  unsigned Failed = 0;
  /// \name Resilience aggregates (docs/resilience.md)
  /// @{
  unsigned Retries = 0;        ///< Attempts beyond the first, all jobs.
  unsigned Degraded = 0;       ///< Jobs accepted on a degraded rung (OMP221).
  unsigned Quarantined = 0;    ///< Jobs quarantined or short-circuited (OMP223).
  unsigned FaultsInjected = 0; ///< Injector events attributed to this batch.
  /// @}
  /// Batch wall-clock time (what the caller waited).
  double WallMillis = 0.0;
  /// Sum of per-job wall times (what a sequential run would have cost).
  double JobMillis = 0.0;

  json::Value toJSON() const;
};

/// A worker pool plus a compile cache. One instance may serve many
/// batches; the cache persists across them (and across processes, when a
/// directory is configured).
class CompileService {
public:
  struct Options {
    /// Worker threads per batch. 0 = hardware concurrency, clamped to
    /// the batch size; 1 degenerates to a sequential run on the calling
    /// thread, which is what the determinism tests compare against.
    unsigned Workers = 0;
    CompileCache::Options Cache;
    /// Retry/degradation/quarantine policy (docs/resilience.md). The
    /// default is inert: one attempt, no ladder, no quarantine.
    ResiliencePolicy Resilience;
  };

  CompileService();
  explicit CompileService(Options O);

  /// Compiles every request, in request order from the caller's view.
  /// Work is dealt to workers via an atomic index, so which thread runs
  /// which job is nondeterministic — but each job is self-contained
  /// (private IRContext, per-compile sinks), so the *results* are not.
  std::vector<CompileOutcome> compileBatch(
      const std::vector<CompileRequest> &Requests);

  /// The worker count a batch of \p Jobs jobs would use.
  unsigned workersFor(size_t Jobs) const;

  CompileCache &cache() { return Cache; }
  const BatchStats &lastBatchStats() const { return Last; }
  const ResiliencePolicy &resiliencePolicy() const { return Opts.Resilience; }

  /// True when \p Id exhausted its attempt budget in an earlier request
  /// and QuarantinePoison is on: later submissions of the same id
  /// short-circuit with a quarantined outcome (OMP223).
  bool isQuarantined(const std::string &Id) const;

private:
  CompileOutcome runOne(const CompileRequest &R);
  /// One attempt at one rung: emit, cache lookup (requested rung only),
  /// compile, evaluate. Never stores to the cache — runOne does, and only
  /// for accepted fault-free requested-rung attempts.
  CompileOutcome runAttempt(const CompileRequest &R,
                            const PipelineOptions &Pipeline, bool AllowCache,
                            CompileCacheIO &IO);
  void quarantine(const std::string &Id);

  Options Opts;
  CompileCache Cache;
  BatchStats Last;
  mutable std::mutex QuarantineMu;
  std::set<std::string> Quarantined;
};

} // namespace ompgpu

#endif // OMPGPU_SERVICE_COMPILESERVICE_H
